// Command tc counts the triangles of a graph with the 2D distributed
// algorithm.
//
// Usage:
//
//	tc -file graph.txt -ranks 16
//	tc -rmat 16 -ef 16 -params g500 -ranks 25 -pershift
//
// The input is either a text edge list (-file) or a generated RMAT instance
// (-rmat scale). The rank count must be a perfect square. The tool prints
// the triangle count, the phase times under the communication cost model,
// and the kernel instrumentation.
package main

import (
	"flag"
	"fmt"
	"os"

	"tc2d"
)

func main() {
	var (
		file     = flag.String("file", "", "text edge list to read ('#'/'%' comments allowed)")
		scale    = flag.Int("rmat", 0, "generate an RMAT graph with 2^scale vertices instead of reading a file")
		ef       = flag.Int("ef", 16, "RMAT edge factor")
		params   = flag.String("params", "g500", "RMAT parameter preset: g500, twitterish, friendsterish")
		seed     = flag.Uint64("seed", 1, "generator seed")
		ranks    = flag.Int("ranks", 1, "number of SPMD ranks (square = Cannon, otherwise SUMMA)")
		enum     = flag.String("enum", "jik", "enumeration rule: jik or ijk")
		noDS     = flag.Bool("no-doubly-sparse", false, "disable the doubly-sparse traversal")
		noDH     = flag.Bool("no-direct-hash", false, "disable direct bitwise-AND hashing")
		noEB     = flag.Bool("no-early-break", false, "disable the early-break probe traversal")
		noBlob   = flag.Bool("no-blob", false, "disable single-blob block serialization")
		perShift = flag.Bool("pershift", false, "print per-shift kernel times")
		summa    = flag.Bool("summa", false, "force the SUMMA schedule even for square rank counts")
		seq      = flag.Bool("check", false, "cross-check against the sequential counter")
	)
	flag.Parse()

	opt := tc2d.Options{
		Ranks:          *ranks,
		ForceSUMMA:     *summa,
		NoDoublySparse: *noDS,
		NoDirectHash:   *noDH,
		NoEarlyBreak:   *noEB,
		NoBlob:         *noBlob,
		TrackPerShift:  *perShift,
	}
	switch *enum {
	case "jik":
		opt.Enumeration = tc2d.EnumJIK
	case "ijk":
		opt.Enumeration = tc2d.EnumIJK
	default:
		fatalf("unknown -enum %q (want jik or ijk)", *enum)
	}

	var g *tc2d.Graph
	var res *tc2d.Result
	var err error
	switch {
	case *file != "":
		f, ferr := os.Open(*file)
		if ferr != nil {
			fatalf("%v", ferr)
		}
		g, err = tc2d.ReadEdgeList(f, 0)
		f.Close()
		if err != nil {
			fatalf("reading %s: %v", *file, err)
		}
		res, err = tc2d.Count(g, opt)
		if err != nil {
			fatalf("%v", err)
		}
	case *scale > 0:
		p, perr := preset(*params)
		if perr != nil {
			fatalf("%v", perr)
		}
		res, err = tc2d.CountRMAT(p, *scale, *ef, *seed, opt)
		if err != nil {
			fatalf("%v", err)
		}
		if *seq {
			g, err = tc2d.GenerateRMAT(p, *scale, *ef, *seed)
			if err != nil {
				fatalf("%v", err)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "tc: need -file or -rmat; see -help")
		os.Exit(2)
	}

	fmt.Printf("vertices:   %d\n", res.N)
	fmt.Printf("edges:      %d\n", res.M)
	fmt.Printf("triangles:  %d\n", res.Triangles)
	fmt.Printf("ranks:      %d\n", *ranks)
	fmt.Printf("ppt:        %.6fs (comm %.1f%%)\n", res.PreprocessTime, 100*res.CommFracPre)
	fmt.Printf("tct:        %.6fs (comm %.1f%%)\n", res.CountTime, 100*res.CommFracCount)
	fmt.Printf("overall:    %.6fs\n", res.TotalTime)
	fmt.Printf("probes:     %d\n", res.Probes)
	fmt.Printf("map tasks:  %d\n", res.MapTasks)
	if *perShift {
		for z, d := range res.LocalPerShift {
			fmt.Printf("shift %2d:   %.6fs (rank 0)\n", z, d)
		}
	}
	if *seq && g != nil {
		want := tc2d.CountSequential(g)
		if want == res.Triangles {
			fmt.Printf("check:      OK (sequential agrees: %d)\n", want)
		} else {
			fatalf("check FAILED: sequential %d, distributed %d", want, res.Triangles)
		}
	}
}

func preset(name string) (tc2d.RMATParams, error) {
	switch name {
	case "g500":
		return tc2d.G500, nil
	case "twitterish":
		return tc2d.Twitterish, nil
	case "friendsterish":
		return tc2d.Friendsterish, nil
	}
	return tc2d.RMATParams{}, fmt.Errorf("unknown params preset %q", name)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tc: "+format+"\n", args...)
	os.Exit(1)
}
