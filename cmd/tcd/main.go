// Command tcd is a triangle counting daemon: it loads a graph into a
// resident distributed cluster once at startup — preprocessing (cyclic
// redistribution, degree relabeling, 2D block construction) runs exactly one
// time — and then serves counting and statistics queries over HTTP/JSON
// against the resident per-rank blocks. This is the build-once / query-many
// execution model: every request is one SPMD epoch on the standing world,
// with zero per-request preprocessing.
//
// Requests are scheduled by the cluster's epoch scheduler: counting
// queries admit concurrently (and concurrent identical queries share one
// epoch), update batches coalesce into exclusive write epochs. Handlers
// hold no server-side mutex; -max-concurrent-queries optionally bounds
// admitted read queries and /stats reports queue depths and coalescing
// factors.
//
// With -persist-dir the cluster is durable: the resident state is
// snapshotted there and every committed update batch lands in a write-ahead
// log, so a restarted tcd pointed at the same directory restores the graph —
// snapshot plus WAL replay, zero re-preprocessing — instead of rebuilding it
// from -graph/-rmat (which are then only used for the very first boot).
//
// With -coordinator the daemon hosts no ranks itself: it listens on the
// given address for standalone tcworker processes (see cmd/tcworker), waits
// until every rank of the world is claimed, and then drives the same epochs
// over real TCP to the worker fleet. Queries, updates, snapshots and WAL
// replay are unchanged — only where the per-rank state lives differs. If a
// worker process dies, in-flight requests fail with 503 and the cluster is
// degraded until a replacement joins; a durable coordinator (-persist-dir)
// then restores the fleet from its snapshot chain plus WAL tail and resumes
// from exactly the last acknowledged write.
//
// The daemon is fully observable: every request is logged structurally
// (log/slog: method, path, status, duration, trace id), GET /metrics
// exposes the cluster's registry in Prometheus text format (query latency
// histograms, scheduler queue/coalescing state, kernel counters, per-rank
// epoch comm/comp time, WAL and snapshot I/O), trace=1 on /count, /update
// and /snapshot returns the phase span tree of that very request, -pprof
// mounts the runtime profiler under /debug/pprof/, and -slow-query logs
// requests over a latency threshold at warn level.
//
// Usage:
//
//	tcd -rmat 14 -ranks 9                       # RMAT graph, 9-rank cluster
//	tcd -graph edges.txt -ranks 4 -addr :7171   # edge-list file
//	tcd -rmat 13 -preset twitter -tcp           # loopback-TCP transport
//	tcd -rmat 12 -max-concurrent-queries 32     # bound admitted reads
//	tcd -rmat 12 -persist-dir /var/lib/tcd      # durable: restores on boot
//	tcd -rmat 12 -pprof -slow-query 250ms       # profiling + slow-query log
//	tcd -follow http://primary:7171 -addr :7172 # read replica of a primary
//	tcd -rmat 12 -coordinator :7271             # ranks live in tcworker procs
//
// A durable tcd (one with -persist-dir) is a replication primary: it
// serves its snapshot chain and WAL under /repl/, and any number of
// followers started with -follow bootstrap from the newest snapshot and
// tail the WAL as CRC-framed batches — scaling read QPS horizontally
// while all writes keep going through the one primary. Followers serve
// /count and /transitivity with an optional per-request staleness bound
// (max_lag_seq=N caps committed-but-unapplied batches, max_lag_ms=T caps
// wall-clock staleness; violations answer 503 + Retry-After), answer
// writes with 421 + the primary's URL, report "catching_up" on /healthz
// until converged, and survive primary restarts and snapshot compaction
// (re-bootstrapping without dropping in-flight reads).
//
// Endpoints:
//
//	GET  /count        — triangle count (query params: nodoublysparse,
//	                     nodirecthash, noearlybreak, noblob,
//	                     noadaptiveintersect, any of =1/true;
//	                     kernelthreads=N overrides the per-rank kernel
//	                     worker count for this query; trace=1 additionally
//	                     returns the span tree of this query — admission,
//	                     epoch, per-rank compute, each Cannon/SUMMA step
//	                     split into shift vs kernel time)
//	GET  /transitivity — global clustering coefficient
//	POST /update       — apply a batch of edge and vertex mutations:
//	                     {"updates":[{"u":1,"v":2,"op":"insert"},
//	                     {"op":"add_vertices","count":3},
//	                     {"op":"remove_vertex","u":7}, ...]};
//	                     counts are maintained incrementally (delta
//	                     counting), no preprocessing re-runs. The vertex
//	                     space is elastic: edges naming ids beyond the
//	                     current space grow the graph; impossible ids
//	                     (negative, removal of a nonexistent vertex,
//	                     growth beyond -max-vertices) return 400 with
//	                     {"code":"vertex_range"}. trace=1 returns the
//	                     write-path span tree (queue wait, base count,
//	                     write epoch, WAL append, rebuild)
//	POST /snapshot     — persist the current state now (requires
//	                     -persist-dir; also happens automatically as the
//	                     WAL grows); returns the snapshot seq/path/bytes
//	                     plus its kind ("base" or a churn-proportional
//	                     "delta" chained off the last base) and chain
//	                     length; trace=1 returns the encode/commit/rotate
//	                     spans
//	GET  /stats        — graph, cluster, service and durability statistics
//	GET  /metrics      — the cluster's observability registry in Prometheus
//	                     text exposition format v0.0.4
//	GET  /healthz      — liveness/readiness probe; returns 503 once
//	                     shutdown has begun so load balancers drain first
//	GET  /debug/pprof/ — runtime profiles (only with -pprof)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"tc2d"
	"tc2d/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", ":7171", "HTTP listen address")
		ranks    = flag.Int("ranks", 0, "SPMD ranks of the resident cluster (0 = the snapshot's rank count on restore, else 4)")
		path     = flag.String("graph", "", "edge-list file to load (overrides -rmat)")
		scale    = flag.Int("rmat", 12, "RMAT scale when no -graph is given (2^scale vertices)")
		ef       = flag.Int("ef", 16, "RMAT edge factor")
		seed     = flag.Uint64("seed", 42, "RMAT seed")
		preset   = flag.String("preset", "g500", "RMAT preset: g500, twitter, friendster")
		tcp      = flag.Bool("tcp", false, "use the loopback TCP transport between ranks")
		slots    = flag.Int("slots", 0, "compute slots (0 = GOMAXPROCS, fastest wall time)")
		drain    = flag.Duration("drain", time.Second, "grace period after /healthz flips to 503 before the listener closes")
		maxQ     = flag.Int("max-concurrent-queries", 0, "cap on concurrently admitted read queries (0 = unlimited)")
		maxV     = flag.Int64("max-vertices", 1<<26, "cap on the elastic vertex space (0 = unbounded)")
		pdir     = flag.String("persist-dir", "", "durability directory: snapshot/WAL on write, restore on boot (empty = not durable)")
		follow   = flag.String("follow", "", "run as a read-only replica of the primary tcd at this URL (bootstraps from its snapshots, tails its WAL)")
		coord    = flag.String("coordinator", "", "run as a multi-process coordinator: host no ranks, accept tcworker processes on this address (e.g. :7271)")
		wwait    = flag.Duration("worker-wait", time.Minute, "how long a booting coordinator waits for workers to cover every rank")
		noSync   = flag.Bool("no-wal-sync", false, "skip the per-commit WAL fsync (crash-safe but not power-loss-safe)")
		kthr     = flag.Int("kernel-threads", 0, "intra-rank kernel workers per rank (0 = min(GOMAXPROCS, NumCPU))")
		usePprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		slowQ    = flag.Duration("slow-query", 0, "log requests slower than this at warn level (0 = disabled)")
		logJSON  = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()

	logger := newLogger(*logJSON)
	slog.SetDefault(logger)

	opt := tc2d.Options{Ranks: *ranks, ComputeSlots: *slots, MaxVertices: *maxV, NoWALSync: *noSync, KernelThreads: *kthr}
	if *tcp {
		opt.Transport = tc2d.TransportTCP
	}

	start := time.Now()
	var (
		cluster  *tc2d.Cluster
		follower *tc2d.Follower
		desc     string
		err      error
	)
	var copt *tc2d.CoordinatorOptions
	if *coord != "" {
		// Coordinator mode: ranks live in tcworker processes that dial the
		// -coordinator address. The resident state is theirs; this process
		// owns scheduling, durability and the HTTP surface.
		if *follow != "" {
			logger.Error("startup failed", "err", errors.New("-coordinator and -follow are mutually exclusive: a coordinator drives workers, a follower replicates a primary"))
			os.Exit(1)
		}
		if *tcp {
			logger.Error("startup failed", "err", errors.New("-coordinator and -tcp are mutually exclusive: worker processes always talk real TCP"))
			os.Exit(1)
		}
		copt = &tc2d.CoordinatorOptions{
			Listen:     *coord,
			WorkerWait: *wwait,
			OnListen: func(a string) {
				logger.Info("waiting for workers", "coordinator", a, "worker_wait", wwait.String())
			},
			Logf: func(format string, args ...any) {
				logger.Info("pworld", "msg", fmt.Sprintf(format, args...))
			},
		}
	}
	if *follow != "" {
		// Follower mode: the resident state is a replica of the primary's —
		// bootstrapped from its snapshot chain, kept current by tailing its
		// WAL. Local durability is the primary's job.
		if *pdir != "" {
			logger.Error("startup failed", "err", errors.New("-follow and -persist-dir are mutually exclusive: a follower's durable state is the primary's"))
			os.Exit(1)
		}
		follower, err = tc2d.OpenFollower(*follow, opt)
		if err == nil {
			cluster = follower.Cluster()
			desc = "follower of " + *follow
		}
	} else {
		cluster, desc, err = openOrBuildCluster(*pdir, *path, *preset, *scale, *ef, *seed, opt, copt)
	}
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}
	closeAll := func() error {
		if follower != nil {
			return follower.Close()
		}
		return cluster.Close()
	}
	defer closeAll()
	info := cluster.Info()
	role := "primary"
	if follower != nil {
		role = "follower"
	}
	if copt != nil {
		role = "coordinator"
	}
	logger.Info("resident cluster up",
		"boot", time.Since(start).Round(time.Millisecond).String(),
		"source", desc, "n", info.N, "m", info.M, "role", role,
		"ranks", info.Ranks, "workers", info.Workers,
		"transport", info.Transport.String())

	s := newServer(cluster, desc, start, *maxQ)
	s.log = logger
	s.slowQuery = *slowQ
	s.pprof = *usePprof
	s.follower = follower
	s.primary = *follow
	s.coordinator = copt != nil
	if follower == nil && info.Persist.Enabled {
		// A durable primary serves the replication surface: followers
		// bootstrap from /repl/snapshot/... and tail /repl/wal.
		rh, rerr := cluster.ReplicationHandler()
		if rerr != nil {
			logger.Error("startup failed", "err", rerr)
			os.Exit(1)
		}
		s.repl = rh
	}
	srv := &http.Server{Addr: *addr, Handler: s.handler()}
	go func() {
		logger.Info("serving", "addr", *addr, "pprof", *usePprof)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			logger.Error("listen failed", "err", err)
			os.Exit(1)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	// Graceful drain, strictly ordered so no accepted work is dropped:
	// (1) healthz flips to 503 and POST /update starts answering 503 +
	// Retry-After (load balancers stop routing, writers back off), staying
	// probeable for the grace period; (2) Shutdown waits out in-flight
	// handlers — including ApplyUpdates callers already enqueued on the
	// cluster's write queue, which block until their write epoch commits —
	// so every update accepted before the signal lands; (3) only then does
	// Cluster.Close run, which itself drains anything still queued before
	// the world and sockets come down.
	s.draining.Store(true)
	logger.Info("shutting down", "healthz", 503, "drain", drain.String())
	time.Sleep(*drain)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("drain incomplete", "err", err)
	}
	if err := closeAll(); err != nil {
		logger.Warn("cluster close", "err", err)
	}
}

// newLogger builds the process logger: slog text (or JSON) on stderr.
func newLogger(jsonOut bool) *slog.Logger {
	if jsonOut {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

// openOrBuildCluster is the restore-on-boot policy: with a persistence
// directory that already holds a snapshot, the cluster is restored from it
// (zero re-preprocessing; -graph/-rmat are ignored) — the rank count then
// comes from the snapshot, so a conflicting explicit -ranks fails loudly.
// Otherwise the graph source builds a fresh cluster, durable from its first
// snapshot onward when -persist-dir is set. A non-nil copt routes every
// path through the multi-process constructors: the resident state then
// lives in tcworker processes, restored over the wire on boot.
func openOrBuildCluster(pdir, path, preset string, scale, ef int, seed uint64, opt tc2d.Options, copt *tc2d.CoordinatorOptions) (*tc2d.Cluster, string, error) {
	if pdir != "" {
		var (
			cl  *tc2d.Cluster
			err error
		)
		if copt != nil {
			cl, err = tc2d.OpenClusterCoordinator(pdir, opt, *copt)
		} else {
			cl, err = tc2d.OpenCluster(pdir, opt)
		}
		if err == nil {
			info := cl.Info()
			desc := fmt.Sprintf("restored from %s (snapshot seq %d, %d WAL batches replayed)",
				pdir, info.Persist.LastSnapshotSeq, info.Persist.ReplayedBatches)
			return cl, desc, nil
		}
		if !errors.Is(err, tc2d.ErrNoSnapshot) {
			return nil, "", fmt.Errorf("restore from %s: %w", pdir, err)
		}
		opt.PersistDir = pdir
	}
	if opt.Ranks == 0 {
		opt.Ranks = 4
	}
	return buildCluster(path, preset, scale, ef, seed, opt, copt)
}

func buildCluster(path, preset string, scale, ef int, seed uint64, opt tc2d.Options, copt *tc2d.CoordinatorOptions) (*tc2d.Cluster, string, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		g, err := tc2d.ReadEdgeList(f, -1)
		if err != nil {
			return nil, "", fmt.Errorf("read %s: %w", path, err)
		}
		var cl *tc2d.Cluster
		if copt != nil {
			cl, err = tc2d.NewClusterCoordinator(g, opt, *copt)
		} else {
			cl, err = tc2d.NewCluster(g, opt)
		}
		return cl, path, err
	}
	var params tc2d.RMATParams
	switch preset {
	case "g500":
		params = tc2d.G500
	case "twitter":
		params = tc2d.Twitterish
	case "friendster":
		params = tc2d.Friendsterish
	default:
		return nil, "", fmt.Errorf("unknown preset %q", preset)
	}
	desc := fmt.Sprintf("rmat-%s s=%d ef=%d seed=%d", preset, scale, ef, seed)
	var (
		cl  *tc2d.Cluster
		err error
	)
	if copt != nil {
		cl, err = tc2d.NewClusterCoordinatorRMAT(params, scale, ef, seed, opt, *copt)
	} else {
		cl, err = tc2d.NewClusterRMAT(params, scale, ef, seed, opt)
	}
	return cl, desc, err
}

// server carries the resident cluster and service counters. Handlers do
// not serialize on any server-side mutex: the cluster's epoch scheduler
// admits queries concurrently, and querySem (when -max-concurrent-queries
// is set) only bounds how many are admitted at once.
type server struct {
	cluster  *tc2d.Cluster
	desc     string
	start    time.Time
	requests atomic.Int64
	errors   atomic.Int64
	draining atomic.Bool

	follower    *tc2d.Follower // non-nil in -follow mode: bounded reads, no writes
	primary     string         // the -follow URL, echoed on write redirects
	repl        http.Handler   // non-nil on a durable primary: the /repl/ surface
	coordinator bool           // -coordinator mode: ranks live in tcworker processes

	log       *slog.Logger
	slowQuery time.Duration // warn-log requests at/over this; 0 = off
	pprof     bool

	querySem     chan struct{} // nil = unlimited
	readInflight atomic.Int64
	readPeak     atomic.Int64
}

func newServer(cl *tc2d.Cluster, desc string, start time.Time, maxQueries int) *server {
	s := &server{cluster: cl, desc: desc, start: start, log: slog.Default()}
	if maxQueries > 0 {
		s.querySem = make(chan struct{}, maxQueries)
	}
	return s
}

// admitQuery bounds concurrent read queries and tracks queue-depth stats.
// The returned release must be called when the query completes.
func (s *server) admitQuery() (release func()) {
	if s.querySem != nil {
		s.querySem <- struct{}{}
	}
	n := s.readInflight.Add(1)
	for {
		peak := s.readPeak.Load()
		if n <= peak || s.readPeak.CompareAndSwap(peak, n) {
			break
		}
	}
	return func() {
		s.readInflight.Add(-1)
		if s.querySem != nil {
			<-s.querySem
		}
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /count", s.handleCount)
	mux.HandleFunc("GET /transitivity", s.handleTransitivity)
	mux.HandleFunc("POST /update", s.handleUpdate)
	mux.HandleFunc("POST /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.repl != nil {
		mux.Handle("GET /repl/", s.repl)
	}
	if s.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s.logRequests(mux)
}

// statusWriter records the status code a handler wrote so the request log
// can report it; handlers that never call WriteHeader implied 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// logRequests is the request middleware: every request gets a trace id
// (echoed in the X-Trace-Id response header, so a slow-query log line is
// joinable with the client's view of the request) and a structured log
// line with method, path, status and duration. Requests at or over the
// -slow-query threshold are logged again at warn level. Probe and scrape
// endpoints are exempt from info-level logging to keep the log readable
// under 1-second scrape intervals.
func (s *server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := obs.NewTraceID()
		w.Header().Set("X-Trace-Id", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		dur := time.Since(t0)
		quiet := r.URL.Path == "/healthz" || r.URL.Path == "/metrics"
		if !quiet || sw.status >= http.StatusBadRequest {
			s.log.Info("request",
				"method", r.Method, "path", r.URL.Path,
				"status", sw.status, "duration_ms", durMillis(dur),
				"trace_id", id)
		}
		if s.slowQuery > 0 && dur >= s.slowQuery && !quiet {
			s.log.Warn("slow query",
				"method", r.Method, "path", r.URL.Path,
				"status", sw.status, "duration_ms", durMillis(dur),
				"threshold_ms", durMillis(s.slowQuery),
				"trace_id", id)
		}
	})
}

// durMillis renders a duration as fractional milliseconds for log fields.
func durMillis(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	// A follower distinguishes catch-up from ready: until it has observed
	// itself fully caught up since its last bootstrap it answers 503 with
	// status "catching_up", so readiness probes keep it out of rotation
	// while it replays — distinctly from "draining" (shutdown) and "ok".
	if s.follower != nil {
		info := s.follower.Info()
		body := map[string]any{
			"status":      "ok",
			"role":        "follower",
			"state":       info.State,
			"applied_seq": info.AppliedSeq,
			"primary_seq": info.PrimarySeq,
			"lag_seq":     info.LagSeq,
		}
		if info.State != "ready" {
			body["status"] = "catching_up"
			w.Header().Set("Retry-After", "1")
			s.writeJSON(w, http.StatusServiceUnavailable, body)
			return
		}
		s.writeJSON(w, http.StatusOK, body)
		return
	}
	// A degraded coordinator (a worker process is gone and the world is not
	// yet reassembled) stays alive but cannot serve: 503 with status
	// "degraded" keeps it out of rotation until a replacement worker joins
	// and recovery completes.
	if s.coordinator {
		if info := s.cluster.Info(); info.Degraded {
			w.Header().Set("Retry-After", "1")
			s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status":  "degraded",
				"role":    "coordinator",
				"workers": info.Workers,
			})
			return
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves the cluster's registry in Prometheus text format.
// Info() is polled first so the resident-graph gauges are current at
// scrape time.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.cluster.Info()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := s.cluster.Metrics().Expose(w); err != nil {
		s.log.Warn("metrics exposition", "err", err)
	}
}

func boolParam(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	b, _ := strconv.ParseBool(v)
	return b
}

func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *server) fail(w http.ResponseWriter, err error) {
	s.errors.Add(1)
	s.writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
}

func (s *server) handleCount(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	release := s.admitQuery()
	defer release()
	q := tc2d.QueryOptions{
		NoDoublySparse:      boolParam(r, "nodoublysparse"),
		NoDirectHash:        boolParam(r, "nodirecthash"),
		NoEarlyBreak:        boolParam(r, "noearlybreak"),
		NoBlob:              boolParam(r, "noblob"),
		NoAdaptiveIntersect: boolParam(r, "noadaptiveintersect"),
	}
	if v := r.URL.Query().Get("kernelthreads"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.errors.Add(1)
			s.writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("kernelthreads=%q must be a non-negative integer", v)})
			return
		}
		q.KernelThreads = n
	}
	t0 := time.Now()
	var (
		res *tc2d.Result
		tr  *obs.Trace
		err error
	)
	if s.follower != nil {
		bound, berr := readBound(r)
		if berr != nil {
			s.errors.Add(1)
			s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": berr.Error()})
			return
		}
		if boolParam(r, "trace") {
			res, tr, err = s.follower.CountTraced(q, bound)
		} else {
			res, err = s.follower.Count(q, bound)
		}
	} else if boolParam(r, "trace") {
		res, tr, err = s.cluster.CountTraced(q)
	} else {
		res, err = s.cluster.Count(q)
	}
	if err != nil {
		if s.staleRead(w, err) || s.degraded(w, err) {
			return
		}
		s.fail(w, err)
		return
	}
	body := map[string]any{
		"triangles":       res.Triangles,
		"n":               res.N,
		"m":               res.M,
		"probes":          res.Probes,
		"map_tasks":       res.MapTasks,
		"merge_tasks":     res.MergeTasks,
		"kernel_threads":  res.KernelThreads,
		"count_time_s":    res.CountTime,
		"comm_frac_count": res.CommFracCount,
		"wall_ms":         durMillis(time.Since(t0)),
		"query":           q,
	}
	if tr != nil {
		body["trace"] = tr.Span()
	}
	s.writeJSON(w, http.StatusOK, body)
}

// updateRequest is the POST /update body.
type updateRequest struct {
	Updates []struct {
		U     int32  `json:"u"`
		V     int32  `json:"v"`
		Count int32  `json:"count"`
		Op    string `json:"op"`
	} `json:"updates"`
}

// misdirectWrite answers a write sent to a follower: 421 Misdirected
// Request with the primary's URL, so clients re-aim instead of retrying.
func (s *server) misdirectWrite(w http.ResponseWriter, path string) {
	s.errors.Add(1)
	w.Header().Set("Location", s.primary+path)
	s.writeJSON(w, http.StatusMisdirectedRequest, map[string]string{
		"error":   "this tcd is a read-only follower: apply writes at the primary",
		"primary": s.primary,
	})
}

// readBound parses the per-request staleness bound of a follower read:
// max_lag_seq caps committed-but-unapplied batches (0 = exactly caught
// up), max_lag_ms caps wall-clock staleness. Absent params = unbounded.
func readBound(r *http.Request) (tc2d.ReadBound, error) {
	b := tc2d.Unbounded
	if v := r.URL.Query().Get("max_lag_seq"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			return b, fmt.Errorf("max_lag_seq=%q must be a non-negative integer", v)
		}
		b.MaxLagSeq = n
	}
	if v := r.URL.Query().Get("max_lag_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms <= 0 {
			return b, fmt.Errorf("max_lag_ms=%q must be a positive number", v)
		}
		b.MaxLag = time.Duration(ms * float64(time.Millisecond))
	}
	return b, nil
}

// degraded maps worker-fleet failures to 503 + Retry-After: the request hit
// a coordinator whose world lost a worker process (ErrWorkerLost if the loss
// interrupted this very epoch, ErrDegraded if it was refused upfront). The
// operation did not commit; the client should retry once a replacement
// worker has joined and recovery finished.
func (s *server) degraded(w http.ResponseWriter, err error) bool {
	if !errors.Is(err, tc2d.ErrDegraded) && !errors.Is(err, tc2d.ErrWorkerLost) {
		return false
	}
	s.errors.Add(1)
	w.Header().Set("Retry-After", "1")
	s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"error": err.Error(),
		"code":  "degraded",
	})
	return true
}

// staleRead maps ErrStaleRead to 503 + Retry-After: the read was refused
// because the follower could not prove itself within the requested bound —
// the client should retry here shortly or relax the bound.
func (s *server) staleRead(w http.ResponseWriter, err error) bool {
	if !errors.Is(err, tc2d.ErrStaleRead) {
		return false
	}
	s.errors.Add(1)
	w.Header().Set("Retry-After", "1")
	s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"error": err.Error(),
		"code":  "stale_read",
	})
	return true
}

func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.follower != nil {
		s.misdirectWrite(w, "/update")
		return
	}
	// Once shutdown has begun, the write queue stops accepting: answer 503
	// with Retry-After so well-behaved writers resubmit elsewhere, while
	// updates accepted before the drain keep committing.
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining: write queue is closed to new updates"})
		return
	}
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.errors.Add(1)
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	batch := make([]tc2d.EdgeUpdate, 0, len(req.Updates))
	for i, u := range req.Updates {
		upd := tc2d.EdgeUpdate{U: u.U, V: u.V}
		switch u.Op {
		case "insert", "":
			upd.Op = tc2d.UpdateInsert
		case "delete":
			upd.Op = tc2d.UpdateDelete
		case "add_vertices":
			upd = tc2d.EdgeUpdate{U: u.Count, Op: tc2d.UpdateAddVertices}
		case "remove_vertex":
			upd = tc2d.EdgeUpdate{U: u.U, Op: tc2d.UpdateRemoveVertex}
		default:
			s.errors.Add(1)
			s.writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("update %d: unknown op %q (want insert, delete, add_vertices or remove_vertex)", i, u.Op)})
			return
		}
		batch = append(batch, upd)
	}
	t0 := time.Now()
	var (
		res *tc2d.UpdateResult
		tr  *obs.Trace
		err error
	)
	if boolParam(r, "trace") {
		res, tr, err = s.cluster.ApplyUpdatesTraced(batch)
	} else {
		res, err = s.cluster.ApplyUpdates(batch)
	}
	if err != nil {
		if s.degraded(w, err) {
			return
		}
		s.errors.Add(1)
		// A typed vertex-range rejection is the caller's fault, with a
		// structured body so clients can tell it from a malformed batch.
		if errors.Is(err, tc2d.ErrVertexRange) {
			s.writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": err.Error(),
				"code":  "vertex_range",
			})
			return
		}
		s.writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
		return
	}
	body := map[string]any{
		"inserted":         res.Inserted,
		"deleted":          res.Deleted,
		"skipped_existing": res.SkippedExisting,
		"skipped_missing":  res.SkippedMissing,
		"skipped_loops":    res.SkippedLoops,
		"added_vertices":   res.AddedVertices,
		"removed_vertices": res.RemovedVertices,
		"vertex_base":      res.VertexBase,
		"n":                res.GrownTo,
		"delta_triangles":  res.DeltaTriangles,
		"triangles":        res.Triangles,
		"m":                res.M,
		"wedges":           res.Wedges,
		"rebuilt":          res.Rebuilt,
		"coalesced":        res.Coalesced,
		"apply_time_s":     res.ApplyTime,
		"wall_ms":          durMillis(time.Since(t0)),
	}
	if tr != nil {
		body["trace"] = tr.Span()
	}
	s.writeJSON(w, http.StatusOK, body)
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.follower != nil {
		s.misdirectWrite(w, "/snapshot")
		return
	}
	t0 := time.Now()
	var (
		info *tc2d.SnapshotInfo
		tr   *obs.Trace
		err  error
	)
	if boolParam(r, "trace") {
		info, tr, err = s.cluster.SnapshotTraced()
	} else {
		info, err = s.cluster.Snapshot()
	}
	if err != nil {
		if s.degraded(w, err) {
			return
		}
		s.errors.Add(1)
		status := http.StatusInternalServerError
		if !s.cluster.Info().Persist.Enabled {
			status = http.StatusConflict // no -persist-dir: the request can never succeed
		}
		s.writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	body := map[string]any{
		"seq":       info.Seq,
		"path":      info.Path,
		"bytes":     info.Bytes,
		"triangles": info.Triangles,
		"kind":      info.Kind,
		"chain_len": info.ChainLen,
		"wall_ms":   durMillis(time.Since(t0)),
	}
	if tr != nil {
		body["trace"] = tr.Span()
	}
	s.writeJSON(w, http.StatusOK, body)
}

func (s *server) handleTransitivity(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	release := s.admitQuery()
	defer release()
	t0 := time.Now()
	var (
		tr  float64
		err error
	)
	if s.follower != nil {
		bound, berr := readBound(r)
		if berr != nil {
			s.errors.Add(1)
			s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": berr.Error()})
			return
		}
		tr, err = s.follower.Transitivity(bound)
	} else {
		tr, err = s.cluster.Transitivity()
	}
	if err != nil {
		if s.staleRead(w, err) || s.degraded(w, err) {
			return
		}
		s.fail(w, err)
		return
	}
	info := s.cluster.Info()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"transitivity": tr,
		"wedges":       info.Wedges,
		"wall_ms":      durMillis(time.Since(t0)),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	info := s.cluster.Info()
	repl := map[string]any{"role": "primary", "serving": s.repl != nil}
	if s.follower != nil {
		fi := s.follower.Info()
		repl = map[string]any{
			"role":            "follower",
			"primary":         fi.PrimaryURL,
			"state":           fi.State,
			"applied_seq":     fi.AppliedSeq,
			"primary_seq":     fi.PrimarySeq,
			"lag_seq":         fi.LagSeq,
			"caught_up":       fi.CaughtUp,
			"lag_ms":          fi.LagMS,
			"bootstraps":      fi.Bootstraps,
			"bootstrap_bytes": fi.BootstrapBytes,
			"applied_batches": fi.AppliedBatches,
			"wal_bytes":       fi.ReceivedBytes,
			"frames":          fi.Frames,
			"last_error":      fi.LastError,
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"replication": repl,
		"graph": map[string]any{
			"source":            s.desc,
			"n":                 info.N,
			"base_n":            info.BaseN,
			"overflow_n":        info.OverflowN,
			"overflow_fraction": info.OverflowFraction,
			"space_version":     info.SpaceVersion,
			"m":                 info.M,
			"wedges":            info.Wedges,
		},
		"workers": map[string]any{
			"coordinator": s.coordinator,
			"connected":   info.Workers,
			"degraded":    info.Degraded,
		},
		"cluster": map[string]any{
			"ranks":                info.Ranks,
			"transport":            info.Transport.String(),
			"queries":              info.Queries,
			"updates":              info.Updates,
			"rebuilds":             info.Rebuilds,
			"incremental_rebuilds": info.IncrementalRebuilds,
			"pre_ops":              info.PreOps,
			"preprocess_time_s":    info.PreprocessTime,
			"comm_frac_pre":        info.CommFracPre,
		},
		"scheduler": map[string]any{
			"read_inflight":          s.readInflight.Load(),
			"read_inflight_peak":     s.readPeak.Load(),
			"max_concurrent_queries": cap(s.querySem),
			"read_epochs":            info.ReadEpochs,
			"read_coalescing":        obs.Ratio(info.Queries, info.ReadEpochs),
			"write_queue_depth":      info.QueueDepth,
			"write_epochs":           info.WriteEpochs,
			"coalesced_batches":      info.CoalescedBatches,
			"write_coalescing":       obs.Ratio(info.CoalescedBatches, info.WriteEpochs),
		},
		"kernel": map[string]any{
			"threads":     info.KernelThreads,
			"map_tasks":   info.MapTasks,
			"merge_tasks": info.MergeTasks,
			"hash_tasks":  info.MapTasks - info.MergeTasks,
			"merge_frac":  obs.Ratio(info.MergeTasks, info.MapTasks),
		},
		"persist": map[string]any{
			"enabled":           info.Persist.Enabled,
			"dir":               info.Persist.Dir,
			"wal_seq":           info.Persist.WALSeq,
			"wal_records":       info.Persist.WALRecords,
			"wal_bytes":         info.Persist.WALBytes,
			"replayed_batches":  info.Persist.ReplayedBatches,
			"snapshots":         info.Persist.Snapshots,
			"last_snapshot_seq": info.Persist.LastSnapshotSeq,
			"delta_snapshots":   info.Persist.DeltaSnapshots,
			"base_snapshot_seq": info.Persist.BaseSnapshotSeq,
			"chain_len":         info.Persist.ChainLen,
			"churn_since_base":  info.Persist.ChurnSinceBase,
		},
		"service": map[string]any{
			"requests": s.requests.Load(),
			"errors":   s.errors.Load(),
			"uptime_s": time.Since(s.start).Seconds(),
		},
	})
}
