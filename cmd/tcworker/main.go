// Command tcworker is a standalone rank-host process for a multi-process
// tc2d deployment: it dials a coordinator (tcd -coordinator, or any process
// that called tc2d.NewClusterCoordinator), claims one or more ranks of the
// SPMD world, builds a TCP mesh to its peer workers, and then executes the
// coordinator's epochs — graph build, counting queries, update batches,
// rebuilds, snapshot encoding, restores — against its resident per-rank
// state.
//
// Workers hold no durable state of their own: the coordinator owns the
// snapshot chain and WAL. A killed worker can therefore simply be restarted
// (or replaced on another machine); on rejoin the coordinator replays the
// durable state to every worker and the cluster resumes exactly where its
// last acknowledged write left it.
//
// Usage:
//
//	tcworker -coordinator 10.0.0.1:7271                 # host 1 rank
//	tcworker -coordinator 10.0.0.1:7271 -ranks 4        # host 4 ranks
//	tcworker -coordinator host:7271 -listen 10.0.0.2:0  # reachable mesh addr
//	tcworker -coordinator host:7271 -reconnect          # rejoin after failures
//	tcworker -coordinator host:7271 -addr :7272         # own /metrics+/healthz
//
// The process exits 0 on SIGINT/SIGTERM (a graceful leave: the coordinator
// frees the ranks immediately) and on coordinator shutdown; with -reconnect
// it instead keeps redialing with backoff, so a worker fleet survives
// coordinator restarts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"tc2d"
	"tc2d/internal/obs"
)

func main() {
	var (
		coord     = flag.String("coordinator", "", "coordinator address to join (required), e.g. 10.0.0.1:7271")
		ranks     = flag.Int("ranks", 1, "how many ranks this process hosts (a contiguous span)")
		listen    = flag.String("listen", "127.0.0.1:0", "peer-mesh listen address; bind an address other workers can reach in multi-host deployments")
		slots     = flag.Int("slots", 0, "compute slots bounding concurrently executing local ranks (0 = GOMAXPROCS)")
		addr      = flag.String("addr", "", "optional HTTP address serving this worker's /metrics and /healthz (empty = none)")
		reconnect = flag.Bool("reconnect", false, "redial the coordinator with backoff after failures instead of exiting")
		alpha     = flag.Float64("alpha", 0, "LogGP cost-model latency override (0 = default)")
		beta      = flag.Float64("beta", 0, "LogGP cost-model inverse-bandwidth override (0 = default)")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()

	var logger *slog.Logger
	if *logJSON {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	slog.SetDefault(logger)
	if *coord == "" {
		logger.Error("missing required -coordinator address")
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	var ready atomic.Bool
	if *addr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			if !ready.Load() {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusServiceUnavailable)
				w.Write([]byte(`{"status":"joining"}`))
				return
			}
			w.Write([]byte(`{"status":"ok"}`))
		})
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.Expose(w)
		})
		go func() {
			logger.Info("worker HTTP up", "addr", *addr)
			if err := http.ListenAndServe(*addr, mux); err != nil {
				logger.Error("worker HTTP listen failed", "err", err)
			}
		}()
	}

	ctx, cancel := context.WithCancel(context.Background())
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		logger.Info("signal received, leaving the world gracefully")
		cancel()
	}()

	opt := tc2d.WorkerOptions{
		Coordinator:  *coord,
		Ranks:        *ranks,
		Listen:       *listen,
		ComputeSlots: *slots,
		Alpha:        *alpha,
		Beta:         *beta,
		Metrics:      reg,
		OnReady: func(spans []int) {
			ready.Store(true)
			logger.Info("world ready", "ranks", spans)
		},
		Logf: func(format string, args ...any) {
			logger.Info("pworld", "msg", fmt.Sprintf(format, args...))
		},
	}

	backoff := time.Second
	for {
		err := tc2d.RunWorker(ctx, opt)
		ready.Store(false)
		if ctx.Err() != nil {
			return // graceful leave
		}
		if err == nil {
			logger.Info("coordinator shut down")
			if !*reconnect {
				return
			}
		} else {
			logger.Error("worker session ended", "err", err)
			if !*reconnect {
				os.Exit(1)
			}
		}
		logger.Info("redialing coordinator", "backoff", backoff.String())
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff < 30*time.Second {
			backoff *= 2
		}
	}
}
