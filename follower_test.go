package tc2d

import (
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tc2d/internal/snapshot"
)

// gatedHandler fronts the primary's replication handler with two switches
// the tests flip: block (503 everything — a partitioned or down primary)
// and swap (a NEW primary process behind the same address — restart).
type gatedHandler struct {
	inner   atomic.Value // http.Handler
	blocked atomic.Bool
}

func (g *gatedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.blocked.Load() {
		http.Error(w, "primary unavailable", http.StatusServiceUnavailable)
		return
	}
	g.inner.Load().(http.Handler).ServeHTTP(w, r)
}

func newReplPrimary(t *testing.T, scale int, opt Options) (*Cluster, *gatedHandler, *httptest.Server, *edgeOracle) {
	t.Helper()
	g, err := GenerateRMAT(G500, scale, 8, 77)
	if err != nil {
		t.Fatal(err)
	}
	opt.PersistDir = t.TempDir()
	opt.NoWALSync = true
	cl, err := NewCluster(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	rh, err := cl.ReplicationHandler()
	if err != nil {
		t.Fatal(err)
	}
	gh := &gatedHandler{}
	gh.inner.Store(rh)
	hs := httptest.NewServer(gh)
	t.Cleanup(hs.Close)
	return cl, gh, hs, newEdgeOracle(g)
}

func waitFollowerReady(t *testing.T, f *Follower) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if f.Info().State == "ready" {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower never became ready: %+v", f.Info())
}

// waitConverged blocks until the follower has applied everything the
// primary has committed, then returns its triangle count at that point.
func waitConverged(t *testing.T, primary *Cluster, f *Follower) int64 {
	t.Helper()
	want := primary.CommittedSeq()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if f.Info().AppliedSeq >= want {
			res, err := f.Count(QueryOptions{}, Unbounded)
			if err != nil {
				t.Fatalf("follower count after convergence: %v", err)
			}
			return res.Triangles
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower never reached primary seq %d: %+v", want, f.Info())
	return 0
}

// The tentpole differential: a follower fed only by snapshot bootstrap plus
// the WAL stream must agree EXACTLY with the primary and the sequential
// oracle after every quiesced point — and a replacement follower opened
// mid-stream (kill-anywhere) bootstraps into the same state.
func TestFollowerConvergesDifferential(t *testing.T) {
	primary, _, hs, oracle := newReplPrimary(t, 7, Options{Ranks: 4})
	f, err := OpenFollower(hs.URL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitFollowerReady(t, f)

	rng := rand.New(rand.NewSource(41))
	const batches = 24
	killAt := 8 + rng.Intn(8) // replace the follower somewhere mid-stream
	for b := 0; b < batches; b++ {
		batch := randomBatch(rng, oracle, 4+rng.Intn(6), 10+rng.Intn(10))
		if _, err := primary.ApplyUpdates(batch); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		oracle.apply(batch)

		if b == killAt {
			// Kill-anywhere: drop the follower mid-stream and bootstrap a
			// fresh one against whatever chain + WAL tail exists right now.
			if err := f.Close(); err != nil {
				t.Fatalf("batch %d: close follower: %v", b, err)
			}
			if f, err = OpenFollower(hs.URL, Options{}); err != nil {
				t.Fatalf("batch %d: reopen follower: %v", b, err)
			}
			defer f.Close()
			waitFollowerReady(t, f)
		}
		if b%6 == 0 || b == killAt || b == batches-1 {
			got := waitConverged(t, primary, f)
			want := CountSequential(oracle.graph(t))
			if got != want {
				t.Fatalf("batch %d: follower %d, oracle %d", b, got, want)
			}
			pres, err := primary.Count(QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got != pres.Triangles {
				t.Fatalf("batch %d: follower %d, primary %d", b, got, pres.Triangles)
			}
		}
	}

	info := f.Info()
	if info.Bootstraps != 1 || info.AppliedBatches == 0 || info.ReceivedBytes == 0 {
		t.Fatalf("follower accounting: %+v", info)
	}
	if lag := f.LagSeq(); lag != 0 {
		t.Fatalf("lag %d after convergence", lag)
	}
}

// Followers reject writes locally: every mutation surface must return
// ErrFollowerReadOnly instead of forking the replica from the stream.
func TestFollowerReadOnly(t *testing.T) {
	_, _, hs, _ := newReplPrimary(t, 6, Options{Ranks: 4})
	f, err := OpenFollower(hs.URL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitFollowerReady(t, f)

	cl := f.Cluster()
	if _, err := cl.ApplyUpdates([]EdgeUpdate{{U: 0, V: 1, Op: UpdateInsert}}); !errors.Is(err, ErrFollowerReadOnly) {
		t.Fatalf("ApplyUpdates: %v, want ErrFollowerReadOnly", err)
	}
	if _, err := cl.AddVertices(4); !errors.Is(err, ErrFollowerReadOnly) {
		t.Fatalf("AddVertices: %v, want ErrFollowerReadOnly", err)
	}
	if _, err := cl.Snapshot(); err == nil {
		t.Fatal("Snapshot on a follower must fail (not durable)")
	}
	// Reads still work while writes are rejected.
	if _, err := f.Count(QueryOptions{}, Unbounded); err != nil {
		t.Fatalf("read on follower: %v", err)
	}
}

// Staleness bounds: a follower cut off from its primary keeps serving
// unbounded reads but fails bounded ones once its caught-up observation
// ages past the requested wall-clock bound.
func TestFollowerStaleRead(t *testing.T) {
	primary, gh, hs, oracle := newReplPrimary(t, 6, Options{Ranks: 4})
	f, err := OpenFollower(hs.URL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitFollowerReady(t, f)

	rng := rand.New(rand.NewSource(43))
	batch := randomBatch(rng, oracle, 0, 12)
	if _, err := primary.ApplyUpdates(batch); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, primary, f)

	// Caught up: every bound passes.
	if _, err := f.Count(QueryOptions{}, ReadBound{MaxLagSeq: 0}); err != nil {
		t.Fatalf("MaxLagSeq=0 while caught up: %v", err)
	}
	if _, err := f.Count(QueryOptions{}, ReadBound{MaxLag: time.Minute}); err != nil {
		t.Fatalf("MaxLag=1m while caught up: %v", err)
	}

	// Partition the primary away and let the last heartbeat age.
	gh.blocked.Store(true)
	time.Sleep(50 * time.Millisecond)
	if _, err := f.Count(QueryOptions{}, ReadBound{MaxLag: 10 * time.Millisecond}); !errors.Is(err, ErrStaleRead) {
		t.Fatalf("MaxLag=10ms while partitioned: %v, want ErrStaleRead", err)
	}
	if _, err := f.Count(QueryOptions{}, Unbounded); err != nil {
		t.Fatalf("unbounded read while partitioned: %v", err)
	}
	if _, err := f.Transitivity(ReadBound{MaxLag: 10 * time.Millisecond}); !errors.Is(err, ErrStaleRead) {
		t.Fatalf("Transitivity bound while partitioned: %v, want ErrStaleRead", err)
	}

	// Heal the partition: bounded reads recover.
	gh.blocked.Store(false)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := f.Count(QueryOptions{}, ReadBound{MaxLag: time.Minute}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("bounded reads never recovered after the partition healed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Compaction catch-up: when retention prunes the WAL range a partitioned
// follower still needs, its next poll gets ErrGone and it must re-bootstrap
// from the current snapshot chain — and still converge exactly.
func TestFollowerRebootstrapAfterCompaction(t *testing.T) {
	primary, gh, hs, oracle := newReplPrimary(t, 6, Options{Ranks: 4})
	f, err := OpenFollower(hs.URL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitFollowerReady(t, f)
	cut := f.Info().AppliedSeq

	// Partition the follower, then churn + snapshot on the primary until
	// retention has pruned the WAL records just past the follower's cursor.
	gh.blocked.Store(true)
	rng := rand.New(rand.NewSource(47))
	dir := primary.WALDir()
	pruned := false
	for i := 0; i < 64 && !pruned; i++ {
		batch := randomBatch(rng, oracle, 6+rng.Intn(6), 12+rng.Intn(12))
		if _, err := primary.ApplyUpdates(batch); err != nil {
			t.Fatalf("churn batch %d: %v", i, err)
		}
		oracle.apply(batch)
		if _, err := primary.Snapshot(); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		_, pruned, err = snapshot.ReadAfter(dir, cut, 1, 0)
		if err != nil {
			t.Fatalf("probing retention: %v", err)
		}
	}
	if !pruned {
		t.Fatalf("retention never pruned past seq %d", cut)
	}

	gh.blocked.Store(false)
	got := waitConverged(t, primary, f)
	if want := CountSequential(oracle.graph(t)); got != want {
		t.Fatalf("follower %d after re-bootstrap, oracle %d", got, want)
	}
	if info := f.Info(); info.Bootstraps < 2 {
		t.Fatalf("expected a re-bootstrap, info: %+v", info)
	}
}

// Primary restart: a follower pointed at a stable address must survive the
// primary process dying and coming back (WAL replay, same data dir),
// resuming the stream from its applied cursor without re-bootstrapping.
func TestFollowerResumesAfterPrimaryRestart(t *testing.T) {
	primary, gh, hs, oracle := newReplPrimary(t, 6, Options{Ranks: 4})
	dir := primary.WALDir()
	f, err := OpenFollower(hs.URL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitFollowerReady(t, f)

	rng := rand.New(rand.NewSource(53))
	batch := randomBatch(rng, oracle, 2, 14)
	if _, err := primary.ApplyUpdates(batch); err != nil {
		t.Fatal(err)
	}
	oracle.apply(batch)
	waitConverged(t, primary, f)

	// Kill the primary. The follower's polls fail and back off.
	gh.blocked.Store(true)
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart from the same data dir behind the same address.
	restarted, err := OpenCluster(dir, Options{NoWALSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	rh, err := restarted.ReplicationHandler()
	if err != nil {
		t.Fatal(err)
	}
	gh.inner.Store(rh)
	gh.blocked.Store(false)

	batch = randomBatch(rng, oracle, 2, 14)
	if _, err := restarted.ApplyUpdates(batch); err != nil {
		t.Fatal(err)
	}
	oracle.apply(batch)

	got := waitConverged(t, restarted, f)
	if want := CountSequential(oracle.graph(t)); got != want {
		t.Fatalf("follower %d after primary restart, oracle %d", got, want)
	}
	if info := f.Info(); info.Bootstraps != 1 {
		t.Fatalf("restart must resume from the applied cursor, not re-bootstrap: %+v", info)
	}
}

// OpenFollower input validation: options that cannot apply to a follower
// are rejected loudly rather than silently ignored.
func TestOpenFollowerRejectsBadOptions(t *testing.T) {
	_, _, hs, _ := newReplPrimary(t, 6, Options{Ranks: 4})
	if _, err := OpenFollower(hs.URL, Options{PersistDir: t.TempDir()}); err == nil {
		t.Fatal("PersistDir on a follower must be rejected")
	}
	if _, err := OpenFollower(hs.URL, Options{Ranks: 9}); err == nil {
		t.Fatal("rank mismatch with the primary manifest must be rejected")
	}
	if _, err := OpenFollower("http://127.0.0.1:1/", Options{}); err == nil {
		t.Fatal("unreachable primary must fail bootstrap")
	}
}
