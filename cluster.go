package tc2d

import (
	"errors"
	"sync"

	"tc2d/internal/core"
	"tc2d/internal/dgraph"
	"tc2d/internal/mpi"
)

// ErrClusterClosed is returned by operations on a closed Cluster.
var ErrClusterClosed = errors.New("tc2d: cluster is closed")

// QueryOptions configures one query against a resident Cluster. Only the
// knobs that affect the counting phase appear here; everything that shapes
// the resident state (ranks, enumeration rule, grid schedule, transport,
// cost model) is fixed at NewCluster time. The zero value runs the paper's
// fully optimized kernel.
type QueryOptions struct {
	// Optimization kill switches, as in Options.
	NoDoublySparse bool
	NoDirectHash   bool
	NoEarlyBreak   bool
	NoBlob         bool
	// TrackPerShift records per-shift kernel times in the Result.
	TrackPerShift bool
}

func (q QueryOptions) coreOptions(enum Enumeration) core.Options {
	return core.Options{
		Enumeration:    enum,
		NoDoublySparse: q.NoDoublySparse,
		NoDirectHash:   q.NoDirectHash,
		NoEarlyBreak:   q.NoEarlyBreak,
		NoBlob:         q.NoBlob,
		TrackPerShift:  q.TrackPerShift,
	}
}

// ClusterInfo is a snapshot of a resident cluster. M and Wedges track
// applied updates exactly (maintained incrementally by the write path), so
// a snapshot taken after ApplyUpdates describes the mutated graph.
type ClusterInfo struct {
	// N and M are the global vertex and undirected-edge counts.
	N, M int64
	// Wedges is the global wedge count Σ_v d(v)·(d(v)-1)/2.
	Wedges int64
	// Ranks is the SPMD world size; Transport the message transport.
	Ranks     int
	Transport Transport
	// Queries is the number of completed Count queries; Updates the number
	// of applied update batches; Rebuilds how often staleness (or an
	// explicit Rebuild call) re-ran the preprocessing pipeline.
	Queries  int64
	Updates  int64
	Rebuilds int64
	// PreOps and PreprocessTime describe the one-time preprocessing that
	// built the resident state; CommFracPre its communication fraction.
	PreOps         int64
	PreprocessTime float64
	CommFracPre    float64
}

// Cluster is a resident distributed graph: the preprocessing pipeline
// (cyclic redistribution, degree relabeling, 2D block construction) runs
// exactly once at construction, and the resulting per-rank blocks then serve
// any number of counting queries. The SPMD world — including its rank
// goroutines and, for TransportTCP, its sockets — stays up between queries;
// each query is one epoch on that world.
//
// Methods are safe for concurrent use: queries from concurrent callers are
// serialized into successive epochs. Close releases the world and is
// idempotent.
type Cluster struct {
	mu        sync.Mutex
	world     *mpi.World
	prep      []*core.Prepared // per-rank resident state, indexed by rank
	enum      Enumeration
	ranks     int
	transport Transport
	queries   int64
	lastTri   int64 // maintained triangle count, -1 until first query
	closed    bool

	// Write-path state (see ApplyUpdates/Rebuild in update.go).
	rebuildFraction float64
	baseM           int64 // edge count at the last build, staleness denominator
	appliedEdges    int64 // effective updates applied since the last build
	updates         int64 // batches applied over the cluster's lifetime
	rebuilds        int64
}

// NewCluster builds a resident cluster over g: the graph is scattered to
// opt.Ranks ranks and preprocessed into the 2D block distribution once.
// Square rank counts use the Cannon schedule, other rank counts (or
// opt.ForceSUMMA) the SUMMA schedule; opt.Transport selects in-process
// channels or loopback TCP. The caller must Close the cluster.
func NewCluster(g *Graph, opt Options) (*Cluster, error) {
	return newCluster(dgraph.ScatterInput{Graph: g}, opt)
}

// NewClusterRMAT builds a resident cluster whose graph is generated in
// parallel on the ranks themselves (as the paper does for its g500 inputs),
// so no rank ever holds the full edge list.
func NewClusterRMAT(params RMATParams, scale, edgeFactor int, seed uint64, opt Options) (*Cluster, error) {
	in := dgraph.RMATInput{Params: params, Scale: scale, EdgeFactor: edgeFactor, Seed: seed}
	return newCluster(in, opt)
}

func newCluster(in dgraph.Input, opt Options) (*Cluster, error) {
	p, err := opt.ranks()
	if err != nil {
		return nil, err
	}
	world, err := opt.newWorld(p)
	if err != nil {
		return nil, err
	}
	summa := opt.useSUMMA(p)
	copt := opt.coreOptions()
	prep := make([]*core.Prepared, p)
	_, err = world.Run(func(c *mpi.Comm) (any, error) {
		d, err := in.Build(c)
		if err != nil {
			return nil, err
		}
		var pr *core.Prepared
		if summa {
			pr, err = core.PrepareSUMMA(c, d, copt)
		} else {
			pr, err = core.Prepare(c, d, copt)
		}
		if err != nil {
			return nil, err
		}
		prep[c.Rank()] = pr
		return nil, nil
	})
	if err != nil {
		world.Close()
		return nil, err
	}
	frac := opt.RebuildFraction
	if frac == 0 {
		frac = 0.25
	}
	return &Cluster{
		world:           world,
		prep:            prep,
		enum:            opt.Enumeration,
		ranks:           p,
		transport:       opt.Transport,
		lastTri:         -1,
		rebuildFraction: frac,
		baseM:           prep[0].M(),
	}, nil
}

// Count answers one triangle counting query against the resident blocks. No
// preprocessing work is repeated: the returned Result has PreOps == 0 and
// PreprocessTime == 0, and TotalTime is the counting phase alone. Safe for
// concurrent callers (queries serialize into successive epochs).
func (cl *Cluster) Count(q QueryOptions) (*Result, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.countLocked(q)
}

func (cl *Cluster) countLocked(q QueryOptions) (*Result, error) {
	if cl.closed {
		return nil, ErrClusterClosed
	}
	copt := q.coreOptions(cl.enum)
	results, err := cl.world.Run(func(c *mpi.Comm) (any, error) {
		return core.CountPrepared(c, cl.prep[c.Rank()], copt)
	})
	if err != nil {
		return nil, err
	}
	res := results[0].(*core.Result)
	cl.queries++
	cl.lastTri = res.Triangles
	return res, nil
}

// Transitivity returns the global clustering coefficient
// 3·triangles / #wedges of the resident graph. Both inputs stay exact
// across updates: the wedge count is maintained incrementally by
// ApplyUpdates and the triangle count is the delta-maintained running
// total (one default query runs first if none has completed yet), so no
// stale cache can leak into the ratio.
func (cl *Cluster) Transitivity() (float64, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return 0, ErrClusterClosed
	}
	if cl.lastTri < 0 {
		if _, err := cl.countLocked(QueryOptions{}); err != nil {
			return 0, err
		}
	}
	w := cl.prep[0].Wedges()
	if w == 0 {
		return 0, nil
	}
	return 3 * float64(cl.lastTri) / float64(w), nil
}

// Info returns a snapshot of the resident cluster.
func (cl *Cluster) Info() ClusterInfo {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	p0 := cl.prep[0]
	return ClusterInfo{
		N:              p0.N(),
		M:              p0.M(),
		Wedges:         p0.Wedges(),
		Ranks:          cl.ranks,
		Transport:      cl.transport,
		Queries:        cl.queries,
		Updates:        cl.updates,
		Rebuilds:       cl.rebuilds,
		PreOps:         p0.PreOps(),
		PreprocessTime: p0.PreprocessTime(),
		CommFracPre:    p0.CommFracPre(),
	}
}

// Close releases the cluster's world (rank goroutines and, for TCP, the
// sockets). Close is idempotent; queries after Close return
// ErrClusterClosed.
func (cl *Cluster) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return nil
	}
	cl.closed = true
	return cl.world.Close()
}
