package tc2d

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tc2d/internal/core"
	"tc2d/internal/dgraph"
	"tc2d/internal/mpi"
	"tc2d/internal/obs"
)

// ErrClosed is the sentinel returned by operations on a closed Cluster.
var ErrClosed = errors.New("tc2d: cluster is closed")

// ErrClusterClosed is the historical name of ErrClosed; both compare equal.
var ErrClusterClosed = ErrClosed

// QueryOptions configures one query against a resident Cluster. Only the
// knobs that affect the counting phase appear here; everything that shapes
// the resident state (ranks, enumeration rule, grid schedule, transport,
// cost model) is fixed at NewCluster time. The zero value runs the paper's
// fully optimized kernel.
type QueryOptions struct {
	// Optimization kill switches, as in Options. NoAdaptiveIntersect
	// composes with the cluster's standing default: it can disable the
	// adaptive intersection for one query but not re-enable it on a
	// cluster built with Options.NoAdaptiveIntersect.
	NoDoublySparse      bool
	NoDirectHash        bool
	NoEarlyBreak        bool
	NoBlob              bool
	NoAdaptiveIntersect bool
	// TrackPerShift records per-shift kernel times in the Result.
	TrackPerShift bool
	// KernelThreads overrides the cluster's intra-rank kernel parallelism
	// for this query (0 = the cluster's Options.KernelThreads; negative
	// values are rejected by Count).
	KernelThreads int
}

// coreOptions resolves one query against the cluster's standing kernel
// defaults. The struct stays comparable: identical concurrent queries share
// one epoch through the flights map.
func (cl *Cluster) queryCoreOptions(q QueryOptions) core.Options {
	threads := q.KernelThreads
	if threads == 0 {
		threads = cl.kernelThreads
	}
	return core.Options{
		Enumeration:         cl.enum,
		NoDoublySparse:      q.NoDoublySparse,
		NoDirectHash:        q.NoDirectHash,
		NoEarlyBreak:        q.NoEarlyBreak,
		NoBlob:              q.NoBlob,
		NoAdaptiveIntersect: q.NoAdaptiveIntersect || cl.noAdaptive,
		TrackPerShift:       q.TrackPerShift,
		KernelThreads:       threads,
	}
}

// ClusterInfo is a snapshot of a resident cluster. M and Wedges track
// applied updates exactly (maintained incrementally by the write path), so
// a snapshot taken after ApplyUpdates describes the mutated graph.
type ClusterInfo struct {
	// N and M are the global vertex and undirected-edge counts. N is
	// elastic: ApplyUpdates batches naming new ids, and AddVertices, grow
	// it live.
	N, M int64
	// BaseN is the vertex count at the last build; ids in [BaseN, N) form
	// the overflow region (admitted since the last build, identity
	// labels). OverflowFraction is (N-BaseN)/N — the share of the id space
	// outside the degree-ordered layout; the next rebuild folds it to 0.
	// SpaceVersion counts vertex-space layout changes (grows and folds).
	BaseN            int64
	OverflowN        int64
	OverflowFraction float64
	SpaceVersion     int64
	// Wedges is the global wedge count Σ_v d(v)·(d(v)-1)/2.
	Wedges int64
	// Ranks is the SPMD world size; Transport the message transport.
	Ranks     int
	Transport Transport
	// Queries is the number of completed Count queries; Updates the number
	// of applied update batches; Rebuilds how often staleness (or an
	// explicit Rebuild call) refreshed the resident layout.
	// IncrementalRebuilds is the subset of Rebuilds that ran the
	// churn-proportional incremental pass (only the degree-dirty labels
	// re-sorted, only their rows moved) instead of the full pipeline.
	Queries             int64
	Updates             int64
	Rebuilds            int64
	IncrementalRebuilds int64
	// Scheduler accounting. ReadEpochs counts the counting epochs run to
	// serve queries (internal epochs, like the write path's base count,
	// are excluded): concurrent identical queries share one epoch's
	// result, so Queries / ReadEpochs is the read-coalescing factor,
	// always ≥ 1 once a query has completed. WriteEpochs
	// counts write epochs; CoalescedBatches the caller batches they
	// absorbed, so CoalescedBatches / WriteEpochs is the write-coalescing
	// factor. QueueDepth is the number of ApplyUpdates callers currently
	// enqueued or in flight.
	ReadEpochs       int64
	WriteEpochs      int64
	CoalescedBatches int64
	QueueDepth       int64
	// KernelThreads is the resolved per-rank kernel worker count queries
	// and write epochs default to; MapTasks and MergeTasks accumulate the
	// intersection-pair counts of completed count epochs (MergeTasks pairs
	// took the sorted-merge path, MapTasks - MergeTasks the hash path), so
	// their ratio is the cluster's observed merge/hash task split.
	KernelThreads int
	MapTasks      int64
	MergeTasks    int64
	// PreOps and PreprocessTime describe the one-time preprocessing that
	// built the resident state; CommFracPre its communication fraction.
	// Both are zero on a cluster restored by OpenCluster: a restore decodes
	// the resident blocks from the snapshot and never re-runs the pipeline.
	PreOps         int64
	PreprocessTime float64
	CommFracPre    float64
	// Persist reports the durability state (WAL sequence, snapshots,
	// replay); Persist.Enabled is false when Options.PersistDir was unset.
	Persist PersistInfo
	// Workers is the number of connected worker processes on a coordinator
	// cluster (0 on in-process clusters); Degraded reports whether such a
	// cluster is currently missing workers or mid-recovery.
	Workers  int
	Degraded bool
}

// Cluster is a resident distributed graph: the preprocessing pipeline
// (cyclic redistribution, degree relabeling, 2D block construction) runs
// exactly once at construction, and the resulting per-rank blocks then serve
// any number of counting queries and update batches. The SPMD world —
// including its transport and, for TransportTCP, its sockets — stays
// up between requests.
//
// All methods are safe for concurrent use, under a reader/writer epoch
// scheduler (see scheduler.go): Count and Transitivity admit concurrently
// (identical concurrent queries share one epoch's result), while
// ApplyUpdates calls enqueue into a write queue whose drains coalesce all
// pending batches into one exclusive write epoch. Close drains the write
// queue, waits out in-flight queries, and is idempotent; late callers get
// ErrClosed.
type Cluster struct {
	world *mpi.World
	// remote replaces world on coordinator clusters (NewClusterCoordinator):
	// epochs run on worker processes over TCP instead of in-process
	// goroutines, and prep stays nil — the resident state lives in the
	// workers. Exactly one of world and remote is non-nil.
	remote    *remoteBackend
	enum      Enumeration
	ranks     int
	transport Transport

	// sched admits reads concurrently and writes exclusively; prep is
	// replaced wholesale by rebuilds under sched.gate held exclusively and
	// read under it held shared.
	sched *scheduler
	prep  []*core.Prepared // per-rank resident state, indexed by rank

	queries     atomic.Int64
	readEpochs  atomic.Int64
	updates     atomic.Int64
	rebuilds    atomic.Int64
	incRebuilds atomic.Int64 // the subset of rebuilds that ran incrementally
	mapTasks    atomic.Int64 // intersection pairs of completed count epochs
	mergeTasks  atomic.Int64 // the subset that took the merge path

	// Standing kernel defaults from Options, immutable after construction:
	// queries resolve KernelThreads=0 against kernelThreads, and the write
	// path's delta passes read the same config off each Prepared value.
	kernelThreads int
	noAdaptive    bool
	// readOnly marks a follower's cluster: the public write path rejects
	// with ErrFollowerReadOnly, and only the replication apply loop mutates
	// the resident state (under the exclusive gate, like any write).
	readOnly  bool
	lastTri   atomic.Int64 // maintained triangle count, -1 until first query
	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error

	// Write-path staleness state, touched only with sched.gate held
	// exclusively. rebuildFraction, incrementalFraction, autoRebuild and
	// maxVertices are immutable. incrementalFraction is the degree-dirty
	// eligibility threshold for incremental rebuilds (0 = always run the
	// full pipeline); fullPreOps the operation count of the last full
	// pipeline run, the baseline incremental rebuilds report savings
	// against (0 on a restored cluster until its first full rebuild).
	rebuildFraction     float64
	incrementalFraction float64
	autoRebuild         bool
	maxVertices         int64 // growth cap (0 = unbounded)
	baseM               int64 // edge count at the last build, staleness denominator
	appliedEdges        int64 // effective updates applied since the last build
	fullPreOps          int64

	// persist is the durability state (snapshot directory + WAL); nil when
	// Options.PersistDir was unset. See persist.go.
	persist *persister

	// metrics holds the pre-resolved observability handles; the registry
	// behind them also receives the runtime's and kernel's series. See
	// metrics.go.
	metrics *clusterMetrics
}

// NewCluster builds a resident cluster over g: the graph is scattered to
// opt.Ranks ranks and preprocessed into the 2D block distribution once.
// Square rank counts use the Cannon schedule, other rank counts (or
// opt.ForceSUMMA) the SUMMA schedule; opt.Transport selects in-process
// channels or loopback TCP. The caller must Close the cluster.
func NewCluster(g *Graph, opt Options) (*Cluster, error) {
	return newCluster(dgraph.ScatterInput{Graph: g}, opt)
}

// NewClusterRMAT builds a resident cluster whose graph is generated in
// parallel on the ranks themselves (as the paper does for its g500 inputs),
// so no rank ever holds the full edge list.
func NewClusterRMAT(params RMATParams, scale, edgeFactor int, seed uint64, opt Options) (*Cluster, error) {
	in := dgraph.RMATInput{Params: params, Scale: scale, EdgeFactor: edgeFactor, Seed: seed}
	return newCluster(in, opt)
}

func newCluster(in dgraph.Input, opt Options) (*Cluster, error) {
	p, err := opt.ranks()
	if err != nil {
		return nil, err
	}
	frac, err := opt.rebuildFraction()
	if err != nil {
		return nil, err
	}
	snapFrac, err := opt.snapshotFraction()
	if err != nil {
		return nil, err
	}
	incFrac, err := opt.incrementalRebuildFraction()
	if err != nil {
		return nil, err
	}
	if opt.DisableIncrementalRebuild {
		incFrac = 0
	}
	if opt.MaxVertices < 0 {
		return nil, fmt.Errorf("tc2d: MaxVertices=%d must be non-negative", opt.MaxVertices)
	}
	kthreads, err := opt.kernelThreads()
	if err != nil {
		return nil, err
	}
	// Resident clusters are always observable: without a caller-provided
	// registry they get a private one. Setting opt.Metrics here threads the
	// registry into the world (epoch/per-rank series) and, via coreOptions,
	// into the preparation pipeline's kernel pools.
	if opt.Metrics == nil {
		opt.Metrics = obs.NewRegistry()
	}
	world, err := opt.newWorld(p)
	if err != nil {
		return nil, err
	}
	summa := opt.useSUMMA(p)
	copt := opt.coreOptions()
	prep := make([]*core.Prepared, p)
	_, err = world.Run(func(c *mpi.Comm) (any, error) {
		d, err := in.Build(c)
		if err != nil {
			return nil, err
		}
		var pr *core.Prepared
		if summa {
			pr, err = core.PrepareSUMMA(c, d, copt)
		} else {
			pr, err = core.Prepare(c, d, copt)
		}
		if err != nil {
			return nil, err
		}
		pr.SetKernelConfig(kthreads, opt.NoAdaptiveIntersect)
		prep[c.Rank()] = pr
		return nil, nil
	})
	if err != nil {
		world.Close()
		return nil, err
	}
	cl := &Cluster{
		world:               world,
		prep:                prep,
		enum:                opt.Enumeration,
		ranks:               p,
		transport:           opt.Transport,
		sched:               newScheduler(),
		rebuildFraction:     frac,
		incrementalFraction: incFrac,
		autoRebuild:         !opt.DisableAutoRebuild,
		maxVertices:         opt.MaxVertices,
		baseM:               prep[0].M(),
		fullPreOps:          prep[0].PreOps(),
		kernelThreads:       kthreads,
		noAdaptive:          opt.NoAdaptiveIntersect,
		metrics:             newClusterMetrics(opt.Metrics),
	}
	cl.lastTri.Store(-1)
	cl.syncGraphMetrics()
	if opt.PersistDir != "" {
		if err := cl.initPersist(opt, snapFrac); err != nil {
			world.Close()
			return nil, err
		}
	}
	go cl.writeLoop()
	return cl, nil
}

// Count answers one triangle counting query against the resident blocks. No
// preprocessing work is repeated: the returned Result has PreOps == 0 and
// PreprocessTime == 0, and TotalTime is the counting phase alone.
//
// Count admits concurrently: queries never wait on each other (they run as
// overlapping read epochs), only on write epochs. Concurrent queries with
// identical QueryOptions share a single epoch's result — safe because the
// scheduler guarantees the resident state cannot change while any of the
// sharing callers is admitted.
func (cl *Cluster) Count(q QueryOptions) (*Result, error) {
	start := time.Now()
	cl.sched.gate.RLock()
	cl.metrics.admissionWait.Observe(time.Since(start).Seconds())
	defer cl.sched.gate.RUnlock()
	if cl.closed.Load() {
		return nil, ErrClosed
	}
	if q.KernelThreads < 0 {
		return nil, fmt.Errorf("tc2d: KernelThreads=%d must be non-negative", q.KernelThreads)
	}
	res, err := cl.countShared(q)
	cl.metrics.observeOp("count", start, err)
	if err != nil {
		return nil, err
	}
	cl.queries.Add(1)
	return res, nil
}

// CountTraced is Count with a per-query execution trace: the returned span
// tree brackets admission, the counting epoch, and inside it each rank's
// schedule — every Cannon/SUMMA step split into its communication (shift or
// broadcast) and kernel phases, with LogGP virtual times attached. Traced
// queries run their own epoch (they never join a shared read flight), so
// the tree describes exactly this query's work. The trace is returned even
// when the count fails, truncated at the failure point.
func (cl *Cluster) CountTraced(q QueryOptions) (*Result, *obs.Trace, error) {
	tr := obs.NewTrace("count")
	defer tr.End()
	start := time.Now()
	adm := tr.Span().StartChild("admission")
	cl.sched.gate.RLock()
	adm.End()
	cl.metrics.admissionWait.Observe(time.Since(start).Seconds())
	defer cl.sched.gate.RUnlock()
	if cl.closed.Load() {
		return nil, tr, ErrClosed
	}
	if q.KernelThreads < 0 {
		return nil, tr, fmt.Errorf("tc2d: KernelThreads=%d must be non-negative", q.KernelThreads)
	}
	es := tr.Span().StartChild("epoch")
	res, err := cl.countEpoch(q, es)
	es.End()
	cl.metrics.observeOp("count", start, err)
	if err != nil {
		return nil, tr, err
	}
	cl.queries.Add(1)
	cl.readEpochs.Add(1)
	return resultCopy(res), tr, nil
}

// countShared serves one query, joining an in-flight identical query's
// epoch when one exists. The caller holds sched.gate (shared or exclusive)
// and counts the query itself.
func (cl *Cluster) countShared(q QueryOptions) (*Result, error) {
	s := cl.sched
	s.rmu.Lock()
	if f, ok := s.flights[q]; ok {
		s.rmu.Unlock()
		cl.metrics.flightShared.Inc()
		<-f.done
		return resultCopy(f.res), f.err
	}
	f := &readFlight{done: make(chan struct{})}
	s.flights[q] = f
	s.rmu.Unlock()

	f.res, f.err = cl.countEpoch(q, nil)
	if f.err == nil {
		cl.readEpochs.Add(1)
	}
	s.rmu.Lock()
	delete(s.flights, q)
	s.rmu.Unlock()
	close(f.done)
	return resultCopy(f.res), f.err
}

// countEpoch runs one counting epoch as a read epoch on the world. The
// caller holds sched.gate. A non-nil parent span collects one per-rank
// child span tree (see core.CountPrepared); kernel counters always land in
// the cluster registry.
func (cl *Cluster) countEpoch(q QueryOptions, parent *obs.Span) (*Result, error) {
	copt := cl.queryCoreOptions(q)
	var res *core.Result
	if cl.remote != nil {
		// Worker processes run the epoch; per-rank traces and kernel
		// counters stay in the workers' own registries.
		var err error
		res, err = cl.remote.count(copt)
		if err != nil {
			return nil, err
		}
	} else {
		copt.Metrics = cl.metrics.registry()
		copt.Trace = parent
		prep := cl.prep
		results, err := cl.world.RunRead(func(c *mpi.Comm) (any, error) {
			return core.CountPrepared(c, prep[c.Rank()], copt)
		})
		if err != nil {
			return nil, err
		}
		res = results[0].(*core.Result)
	}
	cl.lastTri.Store(res.Triangles)
	cl.mapTasks.Add(res.MapTasks)
	cl.mergeTasks.Add(res.MergeTasks)
	return res, nil
}

// metaNow reads the cluster's graph metadata: rank 0's resident state
// in-process, the piggybacked cache of the newest epoch reply on
// coordinator clusters. Every metadata consumer (Info, staleness checks,
// coalescing, metrics) goes through this seam so it cannot care where the
// ranks live.
func (cl *Cluster) metaNow() wireMeta {
	if cl.remote != nil {
		return cl.remote.metaNow()
	}
	return metaOf(cl.prep[0])
}

// resultCopy gives each caller of a shared flight its own Result value,
// including the per-shift slice — callers may mutate what they get back.
func resultCopy(res *Result) *Result {
	if res == nil {
		return nil
	}
	cp := *res
	if res.LocalPerShift != nil {
		cp.LocalPerShift = append([]float64(nil), res.LocalPerShift...)
	}
	return &cp
}

// Transitivity returns the global clustering coefficient
// 3·triangles / #wedges of the resident graph. Both inputs stay exact
// across updates: the wedge count is maintained incrementally by
// ApplyUpdates and the triangle count is the delta-maintained running
// total (one default query runs first if none has completed yet), so no
// stale cache can leak into the ratio. Admits concurrently, like Count.
func (cl *Cluster) Transitivity() (float64, error) {
	start := time.Now()
	cl.sched.gate.RLock()
	cl.metrics.admissionWait.Observe(time.Since(start).Seconds())
	defer cl.sched.gate.RUnlock()
	if cl.closed.Load() {
		return 0, ErrClosed
	}
	if cl.lastTri.Load() < 0 {
		if _, err := cl.countShared(QueryOptions{}); err != nil {
			cl.metrics.observeOp("transitivity", start, err)
			return 0, err
		}
		cl.queries.Add(1)
	}
	cl.metrics.observeOp("transitivity", start, nil)
	return TransitivityFromTotals(cl.lastTri.Load(), cl.metaNow().Wedges), nil
}

// Info returns a snapshot of the resident cluster.
func (cl *Cluster) Info() ClusterInfo {
	cl.sched.gate.RLock()
	defer cl.sched.gate.RUnlock()
	cl.syncGraphMetrics()
	meta := cl.metaNow()
	return ClusterInfo{
		N:                   meta.N,
		M:                   meta.M,
		BaseN:               meta.BaseN,
		OverflowN:           meta.OverflowN,
		OverflowFraction:    meta.overflowFraction(),
		SpaceVersion:        meta.SpaceVersion,
		Wedges:              meta.Wedges,
		Ranks:               cl.ranks,
		Transport:           cl.transport,
		Queries:             cl.queries.Load(),
		Updates:             cl.updates.Load(),
		Rebuilds:            cl.rebuilds.Load(),
		IncrementalRebuilds: cl.incRebuilds.Load(),
		ReadEpochs:          cl.readEpochs.Load(),
		WriteEpochs:         cl.sched.writeEpochs.Load(),
		CoalescedBatches:    cl.sched.absorbed.Load(),
		QueueDepth:          cl.sched.depth.Load(),
		KernelThreads:       meta.KernelWorkers,
		MapTasks:            cl.mapTasks.Load(),
		MergeTasks:          cl.mergeTasks.Load(),
		PreOps:              meta.PreOps,
		PreprocessTime:      meta.PreprocessTime,
		CommFracPre:         meta.CommFracPre,
		Persist:             cl.persistInfo(),
		Workers:             cl.Workers(),
		Degraded:            cl.Degraded(),
	}
}

// Close releases the cluster: the write queue is drained first (every
// ApplyUpdates accepted before Close began still commits — and, on a
// durable cluster, lands in the WAL), in-flight queries and snapshots
// finish (an in-flight Snapshot holds the gate shared, so the world never
// comes down under its encoding epoch), then the world (and, for TCP, the
// sockets) comes down and the WAL handle is released. Close is idempotent;
// operations after Close return ErrClosed.
func (cl *Cluster) Close() error {
	cl.closeOnce.Do(func() {
		s := cl.sched
		s.mu.Lock()
		s.closing = true
		s.cond.Broadcast()
		s.mu.Unlock()
		<-s.drainedCh
		s.gate.Lock()
		cl.closed.Store(true)
		if cl.remote != nil {
			cl.closeErr = cl.remote.close()
		} else {
			cl.closeErr = cl.world.Close()
		}
		cl.closePersist()
		s.gate.Unlock()
	})
	return cl.closeErr
}
