package tc2d

// Multi-process deployment, coordinator side.
//
// A coordinator cluster is an ordinary *Cluster whose epochs run on worker
// PROCESSES instead of in-process goroutines: NewClusterCoordinator listens
// for tcworker daemons (internal/pworld handles the join/heartbeat/mesh
// protocol), ships the graph to them once, and from then on every query,
// update batch, rebuild and snapshot is one coordinated epoch over the
// process-spanning mpi world the workers built among themselves. The
// coordinator itself hosts no ranks and carries no rank traffic — it holds
// the cluster-level state (scheduler, counters, WAL, snapshots) and a cached
// copy of the graph metadata piggybacked on every epoch reply.
//
// Failure model: when any worker dies (socket error, heartbeat timeout,
// graceful leave) the in-flight epochs fail with ErrWorkerLost and the
// cluster degrades — operations fail fast with ErrDegraded. The coordinator's
// own counters (triangle total, applied edges, WAL) only ever advance after
// an epoch commits, so they remain the authority. Once a replacement worker
// joins and the mesh rebuilds, a durable cluster (Options.PersistDir)
// recovers automatically: every worker — the replacement AND the survivors,
// whose in-memory state an aborted epoch may have left inconsistent —
// restores from the newest snapshot chain plus a WAL-tail replay, exactly
// reproducing the acknowledged state. A cluster without PersistDir stays
// degraded permanently (there is no durable state to restore from) and
// should be closed.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tc2d/internal/core"
	"tc2d/internal/delta"
	"tc2d/internal/obs"
	"tc2d/internal/pworld"
	"tc2d/internal/snapshot"
)

// ErrWorkerLost marks an operation that failed because a worker process died
// while the epoch was in flight. The epoch's work is void: no state it
// touched on any worker survives (recovery restores the workers from the
// last durable state). Test with errors.Is.
var ErrWorkerLost = errors.New("tc2d: worker process lost")

// ErrDegraded marks an operation refused because the coordinator's world is
// missing workers: one was lost and no replacement has joined yet, or a
// replacement joined but recovery has not finished. Durable clusters clear
// the condition automatically when recovery completes; clusters without
// Options.PersistDir stay degraded forever once a worker is lost. Test with
// errors.Is.
var ErrDegraded = errors.New("tc2d: cluster is degraded, waiting for workers")

// Epoch operation names of the coordinator/worker protocol.
const (
	opBuild       = "build"        // prepare the resident state from a shipped graph
	opCount       = "count"        // one counting query
	opApply       = "apply"        // one coalesced write super-batch
	opRebuildInc  = "rebuild_inc"  // incremental (churn-proportional) rebuild
	opRebuildFull = "rebuild_full" // full-pipeline rebuild
	opEncodeSnap  = "encode_snap"  // encode per-rank snapshot blobs
	opSnapDone    = "snap_done"    // snapshot published: reset dirty tracking
	opRestore     = "restore"      // install one snapshot-chain member
)

// wireKernel is the gob-safe subset of core.Options shipped with build and
// count epochs (Metrics and Trace are process-local and stay behind).
type wireKernel struct {
	Enumeration         int
	NoDoublySparse      bool
	NoDirectHash        bool
	NoEarlyBreak        bool
	NoBlob              bool
	NoAdaptiveIntersect bool
	TrackPerShift       bool
	KernelThreads       int
}

func wireKernelOf(o core.Options) wireKernel {
	return wireKernel{
		Enumeration:         int(o.Enumeration),
		NoDoublySparse:      o.NoDoublySparse,
		NoDirectHash:        o.NoDirectHash,
		NoEarlyBreak:        o.NoEarlyBreak,
		NoBlob:              o.NoBlob,
		NoAdaptiveIntersect: o.NoAdaptiveIntersect,
		TrackPerShift:       o.TrackPerShift,
		KernelThreads:       o.KernelThreads,
	}
}

func (k wireKernel) coreOptions() core.Options {
	return core.Options{
		Enumeration:         core.Enumeration(k.Enumeration),
		NoDoublySparse:      k.NoDoublySparse,
		NoDirectHash:        k.NoDirectHash,
		NoEarlyBreak:        k.NoEarlyBreak,
		NoBlob:              k.NoBlob,
		NoAdaptiveIntersect: k.NoAdaptiveIntersect,
		TrackPerShift:       k.TrackPerShift,
		KernelThreads:       k.KernelThreads,
	}
}

// wireRMAT describes a distributed RMAT generation (no graph bytes travel:
// every rank generates its own 1D slice, as in NewClusterRMAT).
type wireRMAT struct {
	Params     RMATParams
	Scale      int
	EdgeFactor int
	Seed       uint64
}

// wireBuild parameterizes the one-time opBuild epoch.
type wireBuild struct {
	SUMMA      bool
	Kernel     wireKernel
	KThreads   int  // standing kernel config (SetKernelConfig)
	NoAdaptive bool // standing kernel config
	Track      bool // enable snapshot dirty tracking (durable clusters)
	RMAT       *wireRMAT
}

// wireSnap parameterizes opEncodeSnap.
type wireSnap struct{ Delta bool }

// wireRestore parameterizes one opRestore epoch (one snapshot-chain member).
type wireRestore struct {
	Delta      bool // apply a delta blob onto the restored base
	Final      bool // last chain member: finish kernel config and tracking
	Ranks      int
	Track      bool
	KThreads   int
	NoAdaptive bool
}

// wireMeta is the graph metadata piggybacked on every epoch reply from rank
// 0. The coordinator caches the newest copy, so metadata reads (Info,
// staleness checks, metrics) never need an epoch of their own. All fields
// are global — identical on every rank — by construction.
type wireMeta struct {
	N, M, Wedges   int64
	BaseN          int64
	OverflowN      int64
	SpaceVersion   int64
	PreOps         int64
	PreprocessTime float64
	CommFracPre    float64
	KernelWorkers  int
	DegreeDirty    int
	QR, QC         int
	SUMMA          bool
}

// overflowFraction is (N-BaseN)/N, the share of the id space outside the
// degree-ordered layout.
func (m wireMeta) overflowFraction() float64 {
	if m.N == 0 {
		return 0
	}
	return float64(m.OverflowN) / float64(m.N)
}

// metaOf snapshots one rank's Prepared state into the wire form.
func metaOf(pr *core.Prepared) wireMeta {
	sp := pr.Space()
	qr, qc, summa := pr.GridShape()
	return wireMeta{
		N: pr.N(), M: pr.M(), Wedges: pr.Wedges(),
		BaseN: sp.BaseN, OverflowN: sp.OverflowN(), SpaceVersion: sp.Version,
		PreOps: pr.PreOps(), PreprocessTime: pr.PreprocessTime(), CommFracPre: pr.CommFracPre(),
		KernelWorkers: pr.KernelWorkers(), DegreeDirty: pr.DegreeDirtyCount(),
		QR: qr, QC: qc, SUMMA: summa,
	}
}

// opReply is the result payload one epoch operation sends back. Rank 0
// always carries Meta; the op-specific field depends on the operation
// (opEncodeSnap replies Blob from every rank).
type opReply struct {
	Meta  *wireMeta
	Count *core.Result
	Apply *delta.Result
	Stats *delta.RebuildStats
	Blob  []byte
}

// gobEncode serializes one wire value. The wire structs are all plain
// exported fields, so encoding cannot fail on well-formed values.
func gobEncode(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("tc2d: wire encode: %v", err))
	}
	return buf.Bytes()
}

func gobDecode(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// CoordinatorOptions parameterizes the worker-facing half of a coordinator
// cluster; Options keeps parameterizing everything else (world size via
// Ranks, kernel and policy knobs, PersistDir). The zero value listens on an
// ephemeral loopback port and waits up to a minute for workers.
type CoordinatorOptions struct {
	// Listen is the TCP address workers dial. Default "127.0.0.1:0"; the
	// resolved address is available as Cluster.CoordinatorAddr. For
	// multi-host deployments bind a reachable interface.
	Listen string
	// WorkerWait bounds how long NewClusterCoordinator (and
	// OpenClusterCoordinator) blocks waiting for enough workers to claim
	// every rank. Default 60s.
	WorkerWait time.Duration
	// HeartbeatInterval is how often workers are pinged (default 1s);
	// HeartbeatTimeout evicts a worker whose last pong is older than this
	// (default 5s). The timeout must comfortably exceed the longest
	// exclusive epoch a deployment expects.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout evicts a worker silent for this long. Default 5s.
	HeartbeatTimeout time.Duration
	// OnListen, when non-nil, is called with the resolved listen address
	// once the listener is bound, BEFORE the constructor blocks waiting for
	// workers — the hook that lets a caller using an ephemeral port (":0")
	// launch or direct its workers.
	OnListen func(addr string)
	// Logf, when non-nil, receives membership protocol log lines.
	Logf func(format string, args ...any)
}

// remoteBackend is the coordinator-side epoch engine of a remote Cluster:
// it wraps the pworld.Coordinator, caches the metadata piggybacked on epoch
// replies, and tracks the degraded state across worker losses and
// recoveries.
type remoteBackend struct {
	coord *pworld.Coordinator
	addr  string
	ranks int

	metaMu sync.Mutex
	meta   wireMeta

	degraded   atomic.Bool
	recovering atomic.Bool
	connected  atomic.Int64

	readyOnce sync.Once
	readyCh   chan struct{}

	clMu sync.Mutex
	cl   *Cluster

	metrics *clusterMetrics
	logf    func(format string, args ...any)
}

func (rb *remoteBackend) log(format string, args ...any) {
	if rb.logf != nil {
		rb.logf(format, args...)
	}
}

func (rb *remoteBackend) metaNow() wireMeta {
	rb.metaMu.Lock()
	defer rb.metaMu.Unlock()
	return rb.meta
}

func (rb *remoteBackend) setMeta(m wireMeta) {
	rb.metaMu.Lock()
	rb.meta = m
	rb.metaMu.Unlock()
}

func (rb *remoteBackend) cluster() *Cluster {
	rb.clMu.Lock()
	defer rb.clMu.Unlock()
	return rb.cl
}

func (rb *remoteBackend) attach(cl *Cluster) {
	rb.clMu.Lock()
	rb.cl = cl
	rb.clMu.Unlock()
}

// onEvent tracks membership transitions: it maintains the worker gauges,
// flips the backend degraded on a loss, and kicks recovery when the world
// reassembles.
func (rb *remoteBackend) onEvent(ev pworld.Event) {
	switch ev.Kind {
	case pworld.EventJoined:
		n := rb.connected.Add(1)
		rb.metrics.observeWorkerJoin(n)
	case pworld.EventLost:
		n := rb.connected.Add(-1)
		rb.degraded.Store(true)
		rb.metrics.observeWorkerLoss(n, ev.Reason)
	case pworld.EventReady:
		rb.readyOnce.Do(func() { close(rb.readyCh) })
		if rb.degraded.Load() {
			go rb.recover()
		}
	}
}

// mapRemoteErr translates pworld errors into the package's typed errors.
func mapRemoteErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, pworld.ErrWorkerLost):
		return fmt.Errorf("%v: %w", err, ErrWorkerLost)
	case errors.Is(err, pworld.ErrNotReady):
		return fmt.Errorf("tc2d: world missing workers: %w", ErrDegraded)
	default:
		return err
	}
}

// opRun dispatches one epoch operation, refusing while degraded; opRunRaw
// is the recovery path's variant that bypasses the degraded check.
func (rb *remoteBackend) opRun(read bool, op string, common []byte, perRank map[int][]byte) (map[int][]byte, *opReply, error) {
	if rb.degraded.Load() {
		return nil, nil, fmt.Errorf("tc2d: %s refused: %w", op, ErrDegraded)
	}
	return rb.opRunRaw(read, op, common, perRank)
}

func (rb *remoteBackend) opRunRaw(read bool, op string, common []byte, perRank map[int][]byte) (map[int][]byte, *opReply, error) {
	payloads, err := rb.coord.Run(read, op, common, perRank)
	if err != nil {
		return nil, nil, mapRemoteErr(err)
	}
	rep := new(opReply)
	if b := payloads[0]; len(b) > 0 {
		if err := gobDecode(b, rep); err != nil {
			return nil, nil, fmt.Errorf("tc2d: %s reply: %w", op, err)
		}
		if rep.Meta != nil {
			rb.setMeta(*rep.Meta)
		}
	}
	return payloads, rep, nil
}

// count runs one counting query as a concurrent read epoch on the workers.
func (rb *remoteBackend) count(copt core.Options) (*core.Result, error) {
	_, rep, err := rb.opRun(true, opCount, gobEncode(wireKernelOf(copt)), nil)
	if err != nil {
		return nil, err
	}
	if rep.Count == nil {
		return nil, fmt.Errorf("tc2d: count epoch returned no result")
	}
	return rep.Count, nil
}

// apply runs one coalesced super-batch as an exclusive write epoch.
func (rb *remoteBackend) apply(super []delta.Update) (*delta.Result, error) {
	_, rep, err := rb.opRun(false, opApply, encodeBatch(super), nil)
	if err != nil {
		return nil, err
	}
	if rep.Apply == nil {
		return nil, fmt.Errorf("tc2d: apply epoch returned no result")
	}
	return rep.Apply, nil
}

// applyReplay re-applies one WAL record during recovery, bypassing the
// degraded fast-fail. The WAL payload is already in opApply's common-payload
// framing (encodeBatch), so it ships verbatim.
func (rb *remoteBackend) applyReplay(payload []byte) error {
	_, _, err := rb.opRunRaw(false, opApply, payload, nil)
	return err
}

func (rb *remoteBackend) rebuildIncremental() (*delta.RebuildStats, error) {
	_, rep, err := rb.opRun(false, opRebuildInc, nil, nil)
	if err != nil {
		return nil, err
	}
	if rep.Stats == nil {
		return nil, fmt.Errorf("tc2d: incremental rebuild epoch returned no stats")
	}
	return rep.Stats, nil
}

func (rb *remoteBackend) rebuildFull(track bool) error {
	_, _, err := rb.opRun(false, opRebuildFull, gobEncode(wireBuild{Track: track}), nil)
	return err
}

// encodeSnap has every rank encode its snapshot blob (full or delta) inside
// a read epoch and returns the per-rank blobs for the coordinator to write.
func (rb *remoteBackend) encodeSnap(useDelta bool) (map[int][]byte, error) {
	payloads, _, err := rb.opRun(true, opEncodeSnap, gobEncode(wireSnap{Delta: useDelta}), nil)
	if err != nil {
		return nil, err
	}
	blobs := make(map[int][]byte, rb.ranks)
	for r := 0; r < rb.ranks; r++ {
		var rep opReply
		if len(payloads[r]) == 0 {
			return nil, fmt.Errorf("tc2d: snapshot epoch: rank %d returned no blob", r)
		}
		if err := gobDecode(payloads[r], &rep); err != nil {
			return nil, fmt.Errorf("tc2d: snapshot epoch: rank %d reply: %w", r, err)
		}
		blobs[r] = rep.Blob
	}
	return blobs, nil
}

// snapDone tells every rank its dirty tracking was consumed by a published
// snapshot.
func (rb *remoteBackend) snapDone() error {
	_, _, err := rb.opRun(true, opSnapDone, nil, nil)
	return err
}

// restoreChain installs one validated snapshot chain on every worker: the
// base blobs first, then each delta in application order, one exclusive
// epoch per chain member, blobs read (and checksum-verified) from the
// coordinator's disk. Runs on the raw path: restore IS the way out of the
// degraded state.
func (rb *remoteBackend) restoreChain(dir string, chain []*snapshot.Manifest, track bool, kthreads int, noAdaptive bool) error {
	ranks := chain[len(chain)-1].Ranks
	for i, m := range chain {
		perRank := make(map[int][]byte, ranks)
		for r := 0; r < ranks; r++ {
			blob, err := snapshot.ReadRank(dir, m, r)
			if err != nil {
				return err
			}
			perRank[r] = blob
		}
		common := gobEncode(wireRestore{
			Delta: i > 0, Final: i == len(chain)-1,
			Ranks: ranks, Track: track, KThreads: kthreads, NoAdaptive: noAdaptive,
		})
		if _, _, err := rb.opRunRaw(false, opRestore, common, perRank); err != nil {
			return err
		}
	}
	return nil
}

// recover restores a reassembled world from the durable state: every worker
// installs the newest snapshot chain and replays the WAL tail, after which
// the cluster leaves the degraded state. Runs once per reassembly (Ready
// events during an active recovery are ignored); a failure — including
// another worker loss mid-recovery — leaves the cluster degraded and the
// next reassembly retries.
func (rb *remoteBackend) recover() {
	if !rb.recovering.CompareAndSwap(false, true) {
		return
	}
	defer rb.recovering.Store(false)
	cl := rb.cluster()
	if cl == nil {
		return // lost and reassembled during construction; the builder handles it
	}
	start := time.Now()
	cl.sched.gate.Lock()
	defer cl.sched.gate.Unlock()
	if cl.closed.Load() || !rb.degraded.Load() || !rb.coord.Ready() {
		return
	}
	if cl.persist == nil {
		rb.log("tc2d: workers rejoined but the cluster has no PersistDir — no durable state to restore, staying degraded")
		return
	}
	if err := cl.restoreWorkersLocked(); err != nil {
		rb.log("tc2d: worker recovery failed (will retry on next reassembly): %v", err)
		return
	}
	rb.degraded.Store(false)
	rb.metrics.observeWorkerRecovery(time.Since(start))
	rb.log("tc2d: workers recovered from durable state in %s", time.Since(start).Round(time.Millisecond))
}

// restoreWorkersLocked reinstalls the durable state on every worker: newest
// valid snapshot chain, then the WAL tail. The coordinator's own counters
// (triangle total, applied edges, WAL sequence) are NOT touched — they only
// ever advanced after committed epochs and remain the authority; the replay
// brings the workers back to exactly that state. sched.gate is held
// exclusively.
func (cl *Cluster) restoreWorkersLocked() error {
	rb := cl.remote
	p := cl.persist
	dir := p.dir
	seqs, err := snapshot.List(dir)
	if err != nil {
		return err
	}
	if len(seqs) == 0 {
		return fmt.Errorf("%w: %s", ErrNoSnapshot, dir)
	}
	var lastErr error
	for i := len(seqs) - 1; i >= 0; i-- {
		m, err := snapshot.Load(dir, seqs[i])
		if err == nil {
			var chain []*snapshot.Manifest
			chain, err = loadChain(dir, m)
			if err == nil {
				err = rb.restoreChain(dir, chain, true, cl.kernelThreads, cl.noAdaptive)
				if err == nil {
					return cl.replayWALToWorkers(dir, m.AppliedSeq)
				}
				if errors.Is(err, ErrWorkerLost) || errors.Is(err, ErrDegraded) {
					return err // not a data problem: don't walk to older snapshots
				}
			}
		}
		lastErr = err
	}
	return lastErr
}

// replayWALToWorkers re-applies every WAL record after seq on the workers,
// without touching the coordinator's counters (the records were committed —
// and counted — before the workers were lost).
func (cl *Cluster) replayWALToWorkers(dir string, after uint64) error {
	rb := cl.remote
	var replayed int64
	_, _, _, err := snapshot.Replay(dir, after, func(seq uint64, payload []byte) error {
		if err := rb.applyReplay(payload); err != nil {
			return fmt.Errorf("tc2d: WAL replay of batch %d to workers: %w", seq, err)
		}
		replayed++
		return nil
	})
	if err != nil {
		return err
	}
	rb.log("tc2d: replayed %d WAL batches to recovered workers", replayed)
	return nil
}

func (rb *remoteBackend) close() error {
	return rb.coord.Close()
}

// Workers reports the number of connected worker processes; 0 on ordinary
// in-process clusters.
func (cl *Cluster) Workers() int {
	if cl.remote == nil {
		return 0
	}
	return cl.remote.coord.Workers()
}

// Degraded reports whether a coordinator cluster is currently missing
// workers or mid-recovery (operations fail fast with ErrDegraded while it
// is). Always false on in-process clusters.
func (cl *Cluster) Degraded() bool {
	return cl.remote != nil && cl.remote.degraded.Load()
}

// CoordinatorAddr is the resolved worker-facing listen address of a
// coordinator cluster ("" on in-process clusters) — the address tcworker
// processes dial.
func (cl *Cluster) CoordinatorAddr() string {
	if cl.remote == nil {
		return ""
	}
	return cl.remote.addr
}

// resolveCoordinatorOptions applies the CoordinatorOptions defaults.
func (copt CoordinatorOptions) resolved() CoordinatorOptions {
	if copt.Listen == "" {
		copt.Listen = "127.0.0.1:0"
	}
	if copt.WorkerWait <= 0 {
		copt.WorkerWait = 60 * time.Second
	}
	return copt
}

// newRemoteBackend stands up the worker-facing listener and membership
// protocol. The returned backend is not yet attached to a cluster.
func newRemoteBackend(p int, copt CoordinatorOptions, metrics *clusterMetrics) (*remoteBackend, error) {
	ln, err := net.Listen("tcp", copt.Listen)
	if err != nil {
		return nil, fmt.Errorf("tc2d: coordinator listen %s: %w", copt.Listen, err)
	}
	rb := &remoteBackend{
		addr:    ln.Addr().String(),
		ranks:   p,
		readyCh: make(chan struct{}),
		metrics: metrics,
		logf:    copt.Logf,
	}
	coord, err := pworld.NewCoordinator(ln, pworld.Config{
		World:             p,
		Format:            snapshot.FormatVersion,
		HeartbeatInterval: copt.HeartbeatInterval,
		HeartbeatTimeout:  copt.HeartbeatTimeout,
		OnEvent:           rb.onEvent,
		Logf:              copt.Logf,
	})
	if err != nil {
		ln.Close()
		return nil, err
	}
	rb.coord = coord
	return rb, nil
}

// waitAssembled blocks until every rank is claimed and the worker mesh is
// built, or the WorkerWait deadline passes.
func (rb *remoteBackend) waitAssembled(wait time.Duration) error {
	select {
	case <-rb.readyCh:
		return nil
	case <-time.After(wait):
		return fmt.Errorf("tc2d: %d-rank world did not assemble within %s (%d workers connected, dial address %s)",
			rb.ranks, wait, rb.coord.Workers(), rb.addr)
	}
}

// NewClusterCoordinator builds a resident cluster whose ranks live in
// separate worker processes: it listens on copt.Listen, waits for tcworker
// processes (RunWorker) to claim all opt.Ranks ranks, ships g to them, and
// runs the preprocessing pipeline across the worker mesh. From then on the
// returned Cluster behaves like any other — Count, ApplyUpdates, Snapshot,
// replication sources — except that worker loss degrades it (see
// ErrDegraded) and, when opt.PersistDir is set, a reassembled worker set
// recovers automatically from the snapshot chain and WAL tail.
// opt.Transport is ignored: rank traffic runs over the workers' TCP mesh.
func NewClusterCoordinator(g *Graph, opt Options, copt CoordinatorOptions) (*Cluster, error) {
	return newClusterCoordinator(g, nil, opt, copt)
}

// NewClusterCoordinatorRMAT is NewClusterCoordinator for a generated RMAT
// graph: only the generator parameters travel to the workers, and every
// rank generates its own slice of the edge stream, so no process ever holds
// the full graph.
func NewClusterCoordinatorRMAT(params RMATParams, scale, edgeFactor int, seed uint64, opt Options, copt CoordinatorOptions) (*Cluster, error) {
	rm := &wireRMAT{Params: params, Scale: scale, EdgeFactor: edgeFactor, Seed: seed}
	return newClusterCoordinator(nil, rm, opt, copt)
}

func newClusterCoordinator(g *Graph, rm *wireRMAT, opt Options, copt CoordinatorOptions) (*Cluster, error) {
	p, err := opt.ranks()
	if err != nil {
		return nil, err
	}
	frac, err := opt.rebuildFraction()
	if err != nil {
		return nil, err
	}
	snapFrac, err := opt.snapshotFraction()
	if err != nil {
		return nil, err
	}
	incFrac, err := opt.incrementalRebuildFraction()
	if err != nil {
		return nil, err
	}
	if opt.DisableIncrementalRebuild {
		incFrac = 0
	}
	if opt.MaxVertices < 0 {
		return nil, fmt.Errorf("tc2d: MaxVertices=%d must be non-negative", opt.MaxVertices)
	}
	kthreads, err := opt.kernelThreads()
	if err != nil {
		return nil, err
	}
	if opt.Metrics == nil {
		opt.Metrics = obs.NewRegistry()
	}
	copt = copt.resolved()
	metrics := newClusterMetrics(opt.Metrics)
	metrics.initWorkerMetrics()
	rb, err := newRemoteBackend(p, copt, metrics)
	if err != nil {
		return nil, err
	}
	if copt.OnListen != nil {
		copt.OnListen(rb.addr)
	}
	if err := rb.waitAssembled(copt.WorkerWait); err != nil {
		rb.close()
		return nil, err
	}
	build := wireBuild{
		SUMMA:      opt.useSUMMA(p),
		Kernel:     wireKernelOf(opt.coreOptions()),
		KThreads:   kthreads,
		NoAdaptive: opt.NoAdaptiveIntersect,
		Track:      opt.PersistDir != "",
		RMAT:       rm,
	}
	var perRank map[int][]byte
	if rm == nil {
		perRank = map[int][]byte{0: gobEncode(g)}
	}
	if _, _, err := rb.opRun(false, opBuild, gobEncode(build), perRank); err != nil {
		rb.close()
		return nil, err
	}
	meta := rb.metaNow()
	cl := &Cluster{
		remote:              rb,
		enum:                opt.Enumeration,
		ranks:               p,
		transport:           opt.Transport,
		sched:               newScheduler(),
		rebuildFraction:     frac,
		incrementalFraction: incFrac,
		autoRebuild:         !opt.DisableAutoRebuild,
		maxVertices:         opt.MaxVertices,
		baseM:               meta.M,
		fullPreOps:          meta.PreOps,
		kernelThreads:       kthreads,
		noAdaptive:          opt.NoAdaptiveIntersect,
		metrics:             metrics,
	}
	cl.lastTri.Store(-1)
	rb.attach(cl)
	cl.syncGraphMetrics()
	if opt.PersistDir != "" {
		if err := cl.initPersist(opt, snapFrac); err != nil {
			rb.close()
			return nil, err
		}
	}
	go cl.writeLoop()
	return cl, nil
}

// OpenClusterCoordinator restores a coordinator cluster from a persistence
// directory written by a previous coordinator (or in-process) run: it waits
// for workers to claim every rank the snapshot manifest names, installs the
// newest valid snapshot chain on them, replays the WAL tail through write
// epochs, and resumes serving with the restored counters. Exactly like
// OpenCluster, a corrupt newest snapshot falls back to the previous one,
// ErrNoSnapshot means an empty directory, and opt.Ranks/opt.Enumeration
// conflicting with the manifest are errors.
func OpenClusterCoordinator(dir string, opt Options, copt CoordinatorOptions) (*Cluster, error) {
	frac, err := opt.rebuildFraction()
	if err != nil {
		return nil, err
	}
	snapFrac, err := opt.snapshotFraction()
	if err != nil {
		return nil, err
	}
	incFrac, err := opt.incrementalRebuildFraction()
	if err != nil {
		return nil, err
	}
	if opt.DisableIncrementalRebuild {
		incFrac = 0
	}
	if opt.MaxVertices < 0 {
		return nil, fmt.Errorf("tc2d: MaxVertices=%d must be non-negative", opt.MaxVertices)
	}
	kthreads, err := opt.kernelThreads()
	if err != nil {
		return nil, err
	}
	seqs, err := snapshot.List(dir)
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoSnapshot, dir)
	}
	newest, err := snapshot.Load(dir, seqs[len(seqs)-1])
	if err != nil {
		// Fall back to any loadable manifest for the world shape; the chain
		// walk below revalidates everything.
		for i := len(seqs) - 2; i >= 0 && err != nil; i-- {
			newest, err = snapshot.Load(dir, seqs[i])
		}
		if err != nil {
			return nil, err
		}
	}
	if opt.Ranks != 0 && opt.Ranks != newest.Ranks {
		return nil, fmt.Errorf("tc2d: snapshot was taken on %d ranks, Options.Ranks=%d", newest.Ranks, opt.Ranks)
	}
	if opt.Enumeration != 0 && int(opt.Enumeration) != newest.Enum {
		return nil, fmt.Errorf("tc2d: snapshot was prepared for %v, Options ask for %v",
			Enumeration(newest.Enum), opt.Enumeration)
	}
	if opt.Metrics == nil {
		opt.Metrics = obs.NewRegistry()
	}
	copt = copt.resolved()
	metrics := newClusterMetrics(opt.Metrics)
	metrics.initWorkerMetrics()
	rb, err := newRemoteBackend(newest.Ranks, copt, metrics)
	if err != nil {
		return nil, err
	}
	if copt.OnListen != nil {
		copt.OnListen(rb.addr)
	}
	if err := rb.waitAssembled(copt.WorkerWait); err != nil {
		rb.close()
		return nil, err
	}

	// Newest valid chain, with fall-through exactly like OpenCluster's; a
	// mid-restore worker loss aborts (it is not a data problem).
	var m *snapshot.Manifest
	var lastErr error
	for i := len(seqs) - 1; i >= 0 && m == nil; i-- {
		cand, err := snapshot.Load(dir, seqs[i])
		if err == nil {
			var chain []*snapshot.Manifest
			chain, err = loadChain(dir, cand)
			if err == nil {
				err = rb.restoreChain(dir, chain, true, kthreads, opt.NoAdaptiveIntersect)
				if err == nil {
					m = cand
					break
				}
				if errors.Is(err, ErrWorkerLost) || errors.Is(err, ErrDegraded) {
					rb.close()
					return nil, err
				}
			}
		}
		lastErr = err
		if i > 0 {
			snapshot.Remove(dir, seqs[i])
		}
	}
	if m == nil {
		rb.close()
		return nil, lastErr
	}

	cl := &Cluster{
		remote:              rb,
		enum:                Enumeration(m.Enum),
		ranks:               m.Ranks,
		transport:           opt.Transport,
		sched:               newScheduler(),
		rebuildFraction:     frac,
		incrementalFraction: incFrac,
		autoRebuild:         !opt.DisableAutoRebuild,
		maxVertices:         opt.MaxVertices,
		baseM:               m.BaseM,
		appliedEdges:        m.AppliedEdges,
		kernelThreads:       kthreads,
		noAdaptive:          opt.NoAdaptiveIntersect,
		metrics:             metrics,
	}
	cl.lastTri.Store(m.Triangles)
	rb.attach(cl)

	// Replay the WAL tail through ordinary write epochs, updating the
	// coordinator counters exactly as openFromChain does.
	var replayed, walEdges int64
	last, newestBase, haveSegments, err := snapshot.Replay(dir, m.AppliedSeq, func(seq uint64, payload []byte) error {
		// The WAL payload IS the opApply common payload (encodeBatch framing),
		// so it ships to the workers verbatim.
		_, rep, err := rb.opRunRaw(false, opApply, payload, nil)
		if err != nil {
			return fmt.Errorf("tc2d: WAL replay of batch %d: %w", seq, err)
		}
		if rep.Apply == nil {
			return fmt.Errorf("tc2d: WAL replay of batch %d returned no result", seq)
		}
		if cl.lastTri.Load() >= 0 {
			cl.lastTri.Add(rep.Apply.DeltaTriangles)
		}
		eff := int64(rep.Apply.Inserted + rep.Apply.Deleted)
		cl.appliedEdges += eff
		walEdges += eff
		replayed++
		return nil
	})
	if err != nil {
		rb.close()
		return nil, err
	}
	if !haveSegments {
		newestBase = m.AppliedSeq
	}
	wal, err := snapshot.CreateWAL(dir, newestBase, last, !opt.NoWALSync)
	if err != nil {
		rb.close()
		return nil, err
	}
	wal.SetObserver(cl.metrics.walObserver())
	cl.metrics.walReplayed.Add(float64(replayed))
	cl.syncGraphMetrics()
	restoredInfo := infoFromManifest(dir, m)
	chain, err := loadChain(dir, m)
	if err != nil {
		wal.Close()
		rb.close()
		return nil, err
	}
	cl.persist = &persister{
		dir:       dir,
		snapFrac:  snapFrac,
		autoSnap:  !opt.DisableAutoSnapshot,
		deltaSnap: !opt.DisableDeltaSnapshot,
		wal:       wal,
		seqWait:   make(chan struct{}),
		seq:       last,
		snapSeq:   m.AppliedSeq,
		walEdges:  walEdges,
		replayed:  replayed,
		lastInfo:  &restoredInfo,
		baseSeq:   chain[0].AppliedSeq,
		haveBase:  true,
		chainLen:  len(chain) - 1,
		churnBase: m.ChurnSinceBase + walEdges,
	}
	go cl.writeLoop()
	return cl, nil
}
